//! The `escape` command-line runner: load a topology and a service
//! graph (DSL or JSON), deploy, push traffic, report.
//!
//! ```text
//! escape [run] <topology-file> <service-graph-file> [options]
//! escape run [options]                 (built-in demo chain)
//! escape metrics [<topology-file> <service-graph-file>] [options]
//! escape trace [<topology-file> <service-graph-file>] [options]
//! escape daemon [daemon options]       (serve a live environment; see escaped)
//! escape ctl [--socket PATH] <verb>    (drive a running escaped)
//! escape top [--socket PATH] [--json]  (sparkline view of daemon time series)
//!
//! options:
//!   --algorithm first_fit|best_fit|nearest|backtrack|anneal   (default nearest)
//!   --steering  proactive|reactive                            (default proactive)
//!   --traffic   FROM:TO:COUNT[:LEN[:INTERVAL_US]]             (repeatable)
//!   --ping      FROM:TO:COUNT                                 (repeatable)
//!   --duration-ms N                                           (default 200)
//!   --monitor   CHAIN:VNF                                     (repeatable)
//!   --seed N                                                  (default 1)
//!   --json      topology/SG files are JSON instead of DSL
//!   --faults    FILE   fault plan (JSON); run with self-healing recovery
//!   --format    prometheus|json      (metrics subcommand; default prometheus)
//!   --chrome    FILE   (trace subcommand) also write a Chrome trace-event
//!                      JSON document loadable in chrome://tracing/Perfetto
//!   --domains   FILE   domain spec (JSON): partition the topology and run
//!                      hierarchical multi-domain orchestration
//!   --workers N        simulator threads for --domains (default 1; any
//!                      value produces identical results)
//!   --workload N       generate N random chains over the topology instead
//!                      of reading a service-graph file (seeded by --seed)
//! ```
//!
//! With `--faults`, the run drives the simulation through
//! `run_with_recovery`: scheduled faults are injected in virtual time,
//! the environment re-routes/re-maps/re-steers around them, and the
//! deterministic fault/recovery event trace is printed at the end.
//!
//! The `metrics` subcommand runs the same deployment (a built-in demo
//! chain when no files are given), then dumps the telemetry registry —
//! Prometheus text exposition, or a JSON object with the metric snapshot
//! and the virtual-time span trace.
//!
//! The `trace` subcommand turns on the packet flight recorder before
//! pushing traffic, then prints every packet's hop-by-hop journey
//! (which flow rule steered it at each switch, which Click elements it
//! traversed in each VNF, where and why lost packets died) and each
//! chain's SLA verdict.
//!
//! Exit code 0 on success, 1 on any error, 2 on bad usage.

use escape::env::Escape;
use escape::monitor::format_handler_table;
use escape::session::{algorithm_by_name as algorithm, InputFormat};
use escape::{Session, SessionConfig};
use escape_ctl::launch::{parse_daemon_args, run_daemon, DAEMON_USAGE};
use escape_ctl::proto::{CtlEvent, CtlRequest, CtlResponse, MetricsFormat, SgFormat, WatchTopic};
use escape_ctl::CtlClient;
use escape_domain::DomainSpec;
use escape_json::Value;
use escape_orch::workload::{random_service_graph, WorkloadSpec};
use escape_pox::SteeringMode;
use escape_sg::{parse_service_graph, parse_topology, ResourceTopology, ServiceGraph, Sla};
use std::process::ExitCode;

struct Options {
    topo_file: String,
    sg_file: String,
    algorithm: String,
    steering: SteeringMode,
    traffic: Vec<(String, String, u64, usize, u64)>,
    pings: Vec<(String, String, u64)>,
    duration_ms: u64,
    monitors: Vec<(String, String)>,
    seed: u64,
    json: bool,
    /// `escape metrics ...`: dump telemetry after the run.
    metrics: bool,
    /// `escape run ...`: explicit run subcommand (demo chain when no
    /// files are given).
    run: bool,
    /// Fault plan file (JSON); enables self-healing recovery.
    faults: Option<String>,
    /// Exposition format for the metrics subcommand.
    format: String,
    /// `escape trace ...`: flight-recorder run with journey timelines.
    trace: bool,
    /// Chrome trace-event output file (trace subcommand).
    chrome: Option<String>,
    /// Domain spec file (JSON); enables multi-domain orchestration.
    domains: Option<String>,
    /// Simulator worker threads for the multi-domain epoch loop.
    workers: usize,
    /// Generate this many random chains instead of reading an SG file.
    workload: Option<usize>,
    /// `escape soak ...`: leak-hunting invariant soak run.
    soak: bool,
    /// Steps for the soak subcommand.
    steps: u64,
    /// `escape ctl ...`: args handed to the control-socket client.
    ctl: Option<Vec<String>>,
    /// `escape daemon ...`: args handed to the daemon launcher.
    daemon: Option<Vec<String>>,
    /// `escape top ...`: sparkline view of a daemon's sampler series.
    top: Option<Vec<String>>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: escape [run] <topology> <service-graph> [--algorithm A] [--steering M] \
         [--traffic F:T:N[:LEN[:US]]]... [--ping F:T:N]... [--duration-ms N] \
         [--monitor CHAIN:VNF]... [--seed N] [--json] [--faults PLAN.json]\n       \
         escape run [options]    (built-in demo chain)\n       \
         escape metrics [<topology> <service-graph>] [options] [--format prometheus|json]\n       \
         escape trace [<topology> <service-graph>] [options] [--chrome FILE]\n       \
         escape run <topology> <service-graph> --domains SPEC.json [--workers N]\n       \
         escape run <topology> --workload N    (generated random chains)\n       \
         escape soak [--steps N] [--seed N]    (invariant soak run)\n       \
         escape daemon [daemon options]        (serve a live environment)\n       \
         escape ctl [--socket PATH] <verb>     (drive a running escaped)\n       \
         escape top [--socket PATH] [--json]   (sparkline view of daemon time series)"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut positional = Vec::new();
    let mut o = Options {
        topo_file: String::new(),
        sg_file: String::new(),
        algorithm: "nearest".into(),
        steering: SteeringMode::Proactive,
        traffic: Vec::new(),
        pings: Vec::new(),
        duration_ms: 200,
        monitors: Vec::new(),
        seed: 1,
        json: false,
        metrics: false,
        run: false,
        faults: None,
        format: "prometheus".into(),
        trace: false,
        chrome: None,
        domains: None,
        workers: 1,
        workload: None,
        soak: false,
        steps: 500,
        ctl: None,
        daemon: None,
        top: None,
    };
    let mut first = true;
    while let Some(a) = args.next() {
        if first {
            first = false;
            if a == "metrics" {
                o.metrics = true;
                continue;
            }
            if a == "run" {
                o.run = true;
                continue;
            }
            if a == "trace" {
                o.trace = true;
                continue;
            }
            if a == "soak" {
                o.soak = true;
                continue;
            }
            // The ctl, daemon and top subcommands own their whole
            // argument lists — hand the rest over untouched.
            if a == "ctl" {
                o.ctl = Some(args.collect());
                return Ok(o);
            }
            if a == "daemon" {
                o.daemon = Some(args.collect());
                return Ok(o);
            }
            if a == "top" {
                o.top = Some(args.collect());
                return Ok(o);
            }
        }
        let mut need = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--algorithm" => o.algorithm = need("--algorithm")?,
            "--steering" => {
                o.steering = match need("--steering")?.as_str() {
                    "proactive" => SteeringMode::Proactive,
                    "reactive" => SteeringMode::Reactive,
                    other => return Err(format!("unknown steering mode {other:?}")),
                }
            }
            "--traffic" => {
                let v = need("--traffic")?;
                let parts: Vec<&str> = v.split(':').collect();
                if parts.len() < 3 {
                    return Err(format!("--traffic {v:?}: need FROM:TO:COUNT"));
                }
                let count = parts[2]
                    .parse()
                    .map_err(|_| format!("bad count in {v:?}"))?;
                let len = parts
                    .get(3)
                    .map_or(Ok(128), |s| s.parse())
                    .map_err(|_| format!("bad len in {v:?}"))?;
                let us = parts
                    .get(4)
                    .map_or(Ok(200), |s| s.parse())
                    .map_err(|_| format!("bad interval in {v:?}"))?;
                o.traffic
                    .push((parts[0].into(), parts[1].into(), count, len, us));
            }
            "--ping" => {
                let v = need("--ping")?;
                let parts: Vec<&str> = v.split(':').collect();
                if parts.len() != 3 {
                    return Err(format!("--ping {v:?}: need FROM:TO:COUNT"));
                }
                let count = parts[2]
                    .parse()
                    .map_err(|_| format!("bad count in {v:?}"))?;
                o.pings.push((parts[0].into(), parts[1].into(), count));
            }
            "--duration-ms" => {
                o.duration_ms = need("--duration-ms")?.parse().map_err(|_| "bad duration")?
            }
            "--monitor" => {
                let v = need("--monitor")?;
                let (c, vnf) = v
                    .split_once(':')
                    .ok_or_else(|| format!("--monitor {v:?}: need CHAIN:VNF"))?;
                o.monitors.push((c.to_string(), vnf.to_string()));
            }
            "--seed" => o.seed = need("--seed")?.parse().map_err(|_| "bad seed")?,
            "--json" => o.json = true,
            "--faults" => o.faults = Some(need("--faults")?),
            "--chrome" => o.chrome = Some(need("--chrome")?),
            "--domains" => o.domains = Some(need("--domains")?),
            "--workers" => {
                o.workers = need("--workers")?.parse().map_err(|_| "bad workers")?;
                if o.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--workload" => {
                o.workload = Some(need("--workload")?.parse().map_err(|_| "bad workload")?)
            }
            "--steps" => o.steps = need("--steps")?.parse().map_err(|_| "bad steps")?,
            "--format" => {
                o.format = need("--format")?;
                if o.format != "prometheus" && o.format != "json" {
                    return Err(format!("unknown format {:?}", o.format));
                }
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_string()),
        }
    }
    match positional.len() {
        2 => {
            o.topo_file = positional.remove(0);
            o.sg_file = positional.remove(0);
        }
        // With a generated workload only the topology is needed.
        1 if o.workload.is_some() => o.topo_file = positional.remove(0),
        // `escape metrics` / `escape run` / `escape trace` alone use the
        // built-in demo chain; `escape soak` needs no files at all.
        0 if o.metrics || o.run || o.trace || o.soak => {}
        _ => return Err("need exactly two positional arguments".into()),
    }
    Ok(o)
}

/// Loads the topology/SG pair from files, or the built-in demo chain
/// when no files were given (`escape metrics` with no arguments).
/// With `--workload N` the service graph is generated instead: N random
/// chains over the topology's SAPs, seeded by `--seed`.
fn load_inputs(o: &Options) -> Result<(ResourceTopology, ServiceGraph), String> {
    if let Some(chains) = o.workload {
        let topo = if o.topo_file.is_empty() {
            escape_sg::topo::builders::linear(3, 4.0)
        } else {
            let src = std::fs::read_to_string(&o.topo_file)
                .map_err(|e| format!("{}: {e}", o.topo_file))?;
            if o.json {
                ResourceTopology::from_json(&src)?
            } else {
                parse_topology(&src).map_err(|e| e.to_string())?
            }
        };
        let spec = WorkloadSpec {
            chains,
            seed: o.seed,
            ..WorkloadSpec::default()
        };
        // Typed error, surfaced verbatim ("topology has N SAP(s); random
        // workloads need at least two").
        let sg = random_service_graph(&topo, &spec).map_err(|e| e.to_string())?;
        return Ok((topo, sg));
    }
    if o.topo_file.is_empty() {
        let topo = escape_sg::topo::builders::linear(3, 4.0);
        let sg = ServiceGraph::new()
            .sap("sap0")
            .sap("sap1")
            .vnf("fw", "firewall", 1.0, 256)
            .vnf("mon", "monitor", 0.5, 64)
            .chain("demo", &["sap0", "fw", "mon", "sap1"], 100.0, Some(50_000))
            .with_sla(Sla {
                max_latency_us: Some(50_000),
                max_loss: Some(0.1),
            });
        return Ok((topo, sg));
    }
    let topo_src =
        std::fs::read_to_string(&o.topo_file).map_err(|e| format!("{}: {e}", o.topo_file))?;
    let sg_src = std::fs::read_to_string(&o.sg_file).map_err(|e| format!("{}: {e}", o.sg_file))?;
    let topo: ResourceTopology = if o.json {
        ResourceTopology::from_json(&topo_src)?
    } else {
        parse_topology(&topo_src).map_err(|e| e.to_string())?
    };
    let sg: ServiceGraph = if o.json {
        ServiceGraph::from_json(&sg_src)?
    } else {
        parse_service_graph(&sg_src).map_err(|e| e.to_string())?
    };
    Ok((topo, sg))
}

/// `escape metrics`: deploy, push traffic through every chain, then dump
/// the telemetry registry (Prometheus text or JSON snapshot + trace).
/// Renders through [`Session::metrics_exposition`] — the same code path
/// `escape ctl metrics` hits in the daemon — so the two cannot drift.
fn run_metrics(o: Options) -> Result<(), String> {
    let (topo, sg) = load_inputs(&o)?;
    let mut session = Session::new(
        topo,
        SessionConfig {
            algorithm: o.algorithm.clone(),
            steering: o.steering,
            seed: o.seed,
            ..SessionConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    session.deploy(&sg).map_err(|e| e.to_string())?;
    let mut flows = o.traffic.clone();
    if flows.is_empty() {
        // Default: 20 frames end to end through each deployed chain so
        // dataplane and steering counters move.
        for chain in &sg.chains {
            let src = chain.hops.first().cloned().unwrap_or_default();
            let dst = chain.hops.last().cloned().unwrap_or_default();
            flows.push((src, dst, 20, 128, 200));
        }
    }
    for (from, to, count, len, us) in &flows {
        session
            .start_udp(from, to, *len, *us, *count)
            .map_err(|e| e.to_string())?;
    }
    session.run_for_ms(o.duration_ms);
    print!("{}", session.metrics_exposition(o.format == "json"));
    Ok(())
}

/// `escape trace`: deploy with the flight recorder on, push traffic,
/// then print per-packet journeys, the per-chain summary and SLA
/// verdicts; optionally write a Chrome trace-event file.
fn run_trace(o: Options) -> Result<(), String> {
    let (topo, sg) = load_inputs(&o)?;
    let mut esc = Escape::build(topo, algorithm(&o.algorithm)?, o.steering, o.seed)
        .map_err(|e| e.to_string())?;
    esc.deploy(&sg).map_err(|e| e.to_string())?;
    // The recorder must be armed before the first frame is sent.
    esc.enable_flight_recorder(65_536);
    let mut flows = o.traffic.clone();
    if flows.is_empty() {
        for chain in &sg.chains {
            let src = chain.hops.first().cloned().unwrap_or_default();
            let dst = chain.hops.last().cloned().unwrap_or_default();
            flows.push((src, dst, 5, 128, 200));
        }
    }
    for (from, to, count, len, us) in &flows {
        esc.start_udp(from, to, *len, *us, *count)
            .map_err(|e| e.to_string())?;
    }
    esc.run_for_ms(o.duration_ms);

    let fr = esc.flight_record_aggregated();
    print!("{}", fr.timelines());
    println!("{} journeys recorded", fr.journeys.len());
    for v in esc.sla_verdicts() {
        println!("{v}");
    }
    if let Some(file) = &o.chrome {
        std::fs::write(file, fr.chrome_json()).map_err(|e| format!("{file}: {e}"))?;
        println!("chrome trace written to {file}");
    }
    Ok(())
}

/// Loads and parses the fault plan file, if one was given.
fn load_fault_plan(o: &Options) -> Result<Option<escape_netem::FaultPlan>, String> {
    let Some(file) = &o.faults else {
        return Ok(None);
    };
    let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let plan = escape_netem::FaultPlan::from_json(&src).map_err(|e| format!("{file}: {e}"))?;
    Ok(Some(plan))
}

/// `escape run --domains spec.json`: partition the topology, stitch the
/// chains hierarchically, drive all domain simulators in epoch lockstep
/// and report per-domain results plus the merged event trace.
fn run_domains(o: Options, spec_file: &str) -> Result<(), String> {
    let (topo, sg) = load_inputs(&o)?;
    let spec_src = std::fs::read_to_string(spec_file).map_err(|e| format!("{spec_file}: {e}"))?;
    let spec = DomainSpec::from_json(&spec_src)?;

    println!(
        "escape: {} domains over {} nodes | {} VNFs, {} chains | algorithm={} workers={}",
        spec.domains.len(),
        topo.nodes.len(),
        sg.vnfs.len(),
        sg.chains.len(),
        o.algorithm,
        o.workers,
    );

    let alg_name = o.algorithm.clone();
    let factory = move || algorithm(&alg_name).expect("algorithm validated below");
    algorithm(&o.algorithm)?; // validate the name before building
    let mut md = Escape::with_domains(&topo, &spec, &factory, o.steering, o.seed, o.workers)
        .map_err(|e| e.to_string())?;
    for g in &md.partition().gateways {
        println!(
            "gateway {}: {}({}) -- {}({}) {}us",
            g.id, g.a_domain, g.a_switch, g.b_domain, g.b_switch, g.delay_us
        );
    }
    md.deploy(&sg).map_err(|e| e.to_string())?;
    print!("{}", md.embedding_trace());

    let chains: Vec<String> = sg.chains.iter().map(|c| c.name.clone()).collect();
    for chain in &chains {
        md.start_chain_udp(chain, 128, 200, 20)
            .map_err(|e| e.to_string())?;
    }
    md.run_for_ms(o.duration_ms);

    let sap_names: Vec<String> = md
        .partition()
        .domains
        .iter()
        .flat_map(|d| d.view.saps.clone())
        .collect();
    for sap in sap_names {
        let s = md.sap_stats(&sap).map_err(|e| e.to_string())?;
        if s.udp_rx > 0 {
            println!(
                "{sap}: udp_rx={} bytes={} mean_latency={}",
                s.udp_rx,
                s.bytes_rx,
                s.mean_latency()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    let m = md.metrics();
    println!(
        "handoffs={} restitches={}",
        m.counter_total("domains.handoffs"),
        m.counter_total("domains.restitches"),
    );
    for line in md.event_trace() {
        println!("  {line}");
    }
    Ok(())
}

fn run(o: Options) -> Result<(), String> {
    let (topo, sg) = load_inputs(&o)?;
    let fault_plan = load_fault_plan(&o)?;

    println!(
        "escape: {} switches, {} containers, {} SAPs | {} VNFs, {} chains | algorithm={} steering={:?}",
        topo.switches().count(),
        topo.containers().count(),
        topo.saps().count(),
        sg.vnfs.len(),
        sg.chains.len(),
        o.algorithm,
        o.steering,
    );

    let mut esc = Escape::build(topo, algorithm(&o.algorithm)?, o.steering, o.seed)
        .map_err(|e| e.to_string())?;
    let report = esc.deploy(&sg).map_err(|e| e.to_string())?;
    for dc in &report.chains {
        let placements: Vec<String> = dc
            .vnfs
            .iter()
            .map(|v| format!("{}→{}", v.vnf_name, v.container))
            .collect();
        println!(
            "deployed {}: [{}] path {} µs, {} rules",
            dc.mapping.chain.name,
            placements.join(", "),
            dc.mapping.total_delay_us,
            dc.rules
        );
    }
    println!(
        "setup: total {} (netconf {}, steering {})",
        report.total(),
        report.netconf_phase(),
        report.steering_phase()
    );

    for (from, to, count, len, us) in &o.traffic {
        esc.start_udp(from, to, *len, *us, *count)
            .map_err(|e| e.to_string())?;
        println!("traffic: {from} -> {to}, {count} x {len} B every {us} µs");
    }
    for (from, to, count) in &o.pings {
        esc.start_ping(from, to, 1_000, *count)
            .map_err(|e| e.to_string())?;
        println!("ping: {from} -> {to} x {count}");
    }
    if let Some(plan) = &fault_plan {
        esc.load_fault_plan(plan).map_err(|e| e.to_string())?;
        println!(
            "faults: plan {:?} armed, {} events",
            plan.name,
            plan.events.len()
        );
        esc.run_with_recovery(o.duration_ms);
    } else {
        esc.run_for_ms(o.duration_ms);
    }

    // Report every SAP with any receive activity.
    let saps: Vec<String> = esc.topology().saps().map(|n| n.name.clone()).collect();
    for sap in saps {
        let s = esc.sap_stats(&sap).map_err(|e| e.to_string())?;
        if s.udp_rx + s.icmp_echo_rx + s.icmp_reply_rx > 0 {
            println!(
                "{sap}: udp_rx={} bytes={} echo_rx={} reply_rx={} mean_latency={}",
                s.udp_rx,
                s.bytes_rx,
                s.icmp_echo_rx,
                s.icmp_reply_rx,
                s.mean_latency()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    for (chain, vnf) in &o.monitors {
        let handlers = esc.monitor_vnf(chain, vnf).map_err(|e| e.to_string())?;
        println!(
            "{}",
            format_handler_table(&format!("{vnf} @ {chain}"), &handlers)
        );
    }
    if fault_plan.is_some() {
        let m = esc.metrics();
        println!(
            "faults: injected={} recoveries={} failures={} rpc_retries={}",
            m.counter_total("faults.injected"),
            m.counter("escape.recoveries", &[]).unwrap_or(0),
            m.counter("escape.recovery_failures", &[]).unwrap_or(0),
            m.counter("netconf.rpc_retries", &[]).unwrap_or(0),
        );
        for line in esc.event_trace() {
            println!("  {line}");
        }
    }
    Ok(())
}

/// `escape soak`: run the leak-hunting soak harness and print its
/// report. Exits non-zero if any step violated a conservation
/// invariant.
fn run_soak_cmd(o: Options) -> Result<(), String> {
    let report = escape::soak::run_soak(escape::soak::SoakConfig {
        steps: o.steps,
        seed: o.seed,
    });
    println!("{}", report.summary());
    if o.json {
        println!(
            "{{\"steps\":{},\"deploys\":{},\"rollbacks\":{},\"teardowns\":{},\"teardown_retries\":{},\"faults\":{},\"queued\":{},\"rejected\":{},\"live_at_end\":{},\"violations\":{}}}",
            report.steps,
            report.deploys,
            report.rollbacks,
            report.teardowns,
            report.teardown_retries,
            report.faults,
            report.admission_queued,
            report.admission_rejected,
            report.live_at_end,
            report.violations.len(),
        );
    }
    if !report.clean() {
        for v in &report.violations {
            eprintln!("violation: {v}");
        }
        return Err(format!(
            "{} invariant violation(s)",
            report.violations.len()
        ));
    }
    Ok(())
}

const CTL_USAGE: &str = "usage: escape ctl [--socket PATH] <verb>\n  \
     verbs: status | deploy FILE [--json] | teardown CHAIN | run-for MS | fault PLAN.json |\n         \
     heal | metrics [--prom] | sla | series | journal |\n         \
     watch [--topics events,metrics-deltas,sla] |\n         \
     traffic FROM:TO:COUNT[:LEN[:US]] | shutdown";

/// `escape ctl`: one-shot client for a running `escaped`. File-based
/// verbs read the file here and ship its contents — the daemon never
/// touches the client's filesystem.
fn run_ctl(args: Vec<String>) -> Result<(), String> {
    let mut socket = String::from("escaped.sock");
    let mut json_flag = false;
    let mut prom = false;
    let mut topics: Vec<WatchTopic> = Vec::new();
    let mut words: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = it.next().ok_or("--socket needs a value")?,
            "--json" => json_flag = true,
            "--prom" => prom = true,
            "--topics" => {
                let list = it.next().ok_or("--topics needs a value")?;
                for t in list.split(',') {
                    topics.push(WatchTopic::parse(t).map_err(|e| e.to_string())?);
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown ctl option {other}\n{CTL_USAGE}"))
            }
            other => words.push(other.to_string()),
        }
    }
    let Some(verb) = words.first().cloned() else {
        return Err(CTL_USAGE.into());
    };
    if verb == "watch" {
        let client = CtlClient::connect(&socket).map_err(|e| format!("{socket}: {e}"))?;
        return run_ctl_watch(client, &topics);
    }
    let arg = |i: usize, what: &str| -> Result<String, String> {
        words
            .get(i)
            .cloned()
            .ok_or_else(|| format!("ctl {verb}: missing {what}\n{CTL_USAGE}"))
    };
    let req = match verb.as_str() {
        "status" => CtlRequest::Status,
        "deploy" => {
            let file = arg(1, "service-graph file")?;
            let sg = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let format = if json_flag || InputFormat::from_path(&file) == InputFormat::Json {
                SgFormat::Json
            } else {
                SgFormat::Dsl
            };
            CtlRequest::Deploy { sg, format }
        }
        "teardown" => CtlRequest::Teardown {
            chain: arg(1, "chain name")?,
        },
        "run-for" => CtlRequest::RunFor {
            ms: arg(1, "milliseconds")?
                .parse()
                .map_err(|_| "bad milliseconds")?,
        },
        "fault" => {
            let file = arg(1, "fault plan file")?;
            CtlRequest::Fault {
                plan: std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?,
            }
        }
        "heal" => CtlRequest::Heal,
        "metrics" => CtlRequest::Metrics {
            format: if prom {
                MetricsFormat::Prometheus
            } else {
                MetricsFormat::Json
            },
        },
        "sla" => CtlRequest::Sla,
        "series" => CtlRequest::Series,
        "journal" => CtlRequest::Journal,
        "traffic" => {
            let spec = arg(1, "FROM:TO:COUNT[:LEN[:US]]")?;
            let parts: Vec<&str> = spec.split(':').collect();
            if parts.len() < 3 {
                return Err(format!("ctl traffic {spec:?}: need FROM:TO:COUNT"));
            }
            CtlRequest::Traffic {
                from: parts[0].into(),
                to: parts[1].into(),
                frames: parts[2]
                    .parse()
                    .map_err(|_| format!("bad count in {spec:?}"))?,
                len: parts
                    .get(3)
                    .map_or(Ok(128), |s| s.parse())
                    .map_err(|_| format!("bad len in {spec:?}"))?,
                interval_us: parts
                    .get(4)
                    .map_or(Ok(200), |s| s.parse())
                    .map_err(|_| format!("bad interval in {spec:?}"))?,
            }
        }
        "shutdown" => CtlRequest::Shutdown,
        other => return Err(format!("unknown ctl verb {other:?}\n{CTL_USAGE}")),
    };
    let mut client = CtlClient::connect(&socket).map_err(|e| format!("{socket}: {e}"))?;
    let resp = client.call(&req).map_err(|e| format!("{socket}: {e}"))?;
    render_ctl_response(resp)
}

/// `escape ctl watch`: subscribe and render the live event feed until
/// the daemon closes the stream (shutdown or slow-consumer eviction).
fn run_ctl_watch(client: CtlClient, topics: &[WatchTopic]) -> Result<(), String> {
    let mut watch = client.watch(topics).map_err(|e| e.to_string())?;
    let acked: Vec<&str> = watch.topics().iter().map(|t| t.label()).collect();
    eprintln!("watching: {}", acked.join(", "));
    while let Some(ev) = watch.next_event().map_err(|e| e.to_string())? {
        match ev {
            CtlEvent::Journal {
                at_ns,
                severity,
                kind,
                detail,
            } => println!("[{at_ns:>12}ns] {severity:<5} {kind:<24} {detail}"),
            CtlEvent::MetricsDelta { at_ns, deltas } => {
                let rendered: Vec<String> = deltas
                    .iter()
                    .map(|d| {
                        let labels = if d.labels.is_empty() {
                            String::new()
                        } else {
                            let kv: Vec<String> =
                                d.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                            format!("{{{}}}", kv.join(","))
                        };
                        match d.metric.as_str() {
                            "gauge" => format!("{}{labels}={}", d.name, fmt_point(d.value)),
                            _ => format!("{}{labels}+{}", d.name, fmt_point(d.value)),
                        }
                    })
                    .collect();
                println!(
                    "[{at_ns:>12}ns] info  metrics-delta            {}",
                    rendered.join(" ")
                );
            }
            CtlEvent::Sla { at_ns, verdicts } => {
                for v in &verdicts {
                    println!(
                        "[{at_ns:>12}ns] {} sla-verdict              chain {}: {} (delivered {} dropped {} loss {:.3})",
                        if v.pass { "info " } else { "warn " },
                        v.chain,
                        if v.pass { "PASS" } else { "FAIL" },
                        v.delivered,
                        v.dropped,
                        v.loss
                    );
                }
            }
            CtlEvent::Lagged { missed } => {
                println!("[      lagged  ] warn  lagged                   {missed} frame(s) dropped (slow consumer)");
            }
        }
    }
    eprintln!("watch stream closed by daemon");
    Ok(())
}

const TOP_USAGE: &str = "usage: escape top [--socket PATH] [--json]";

/// `escape top`: fetch the daemon's sampler series and render one
/// sparkline row per moving metric (or the raw JSON with `--json`).
fn run_top(args: Vec<String>) -> Result<(), String> {
    let mut socket = String::from("escaped.sock");
    let mut raw = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = it.next().ok_or("--socket needs a value")?,
            "--json" => raw = true,
            other => return Err(format!("unknown top option {other}\n{TOP_USAGE}")),
        }
    }
    let mut client = CtlClient::connect(&socket).map_err(|e| format!("{socket}: {e}"))?;
    let body = match client
        .call(&CtlRequest::Series)
        .map_err(|e| format!("{socket}: {e}"))?
    {
        CtlResponse::Series { body } => body,
        CtlResponse::Error(e) => return Err(e.to_string()),
        other => return Err(format!("unexpected response {other:?}")),
    };
    if raw {
        print!("{body}");
        return Ok(());
    }
    print!("{}", render_top(&body)?);
    Ok(())
}

/// Renders a series document as a sparkline table.
fn render_top(body: &str) -> Result<String, String> {
    let doc = Value::parse(body).map_err(|e| format!("bad series document: {e}"))?;
    let period_ns = doc
        .get("period_ns")
        .and_then(Value::as_u64)
        .unwrap_or_default();
    let evicted = doc
        .get("evicted")
        .and_then(Value::as_u64)
        .unwrap_or_default();
    let at_ns = doc.get("at_ns").and_then(Value::as_arr).unwrap_or(&[]);
    let series = doc.get("series").and_then(Value::as_arr).unwrap_or(&[]);
    let mut out = String::new();
    let window_ns = match (at_ns.first(), at_ns.last()) {
        (Some(a), Some(b)) => b.as_u64().unwrap_or(0) - a.as_u64().unwrap_or(0),
        _ => 0,
    };
    out.push_str(&format!(
        "{} samples @ {:.1} ms (window {:.1} ms, {} evicted)\n",
        at_ns.len(),
        period_ns as f64 / 1e6,
        window_ns as f64 / 1e6,
        evicted
    ));
    if series.is_empty() {
        out.push_str("(no metric moved in the sampled window)\n");
        return Ok(out);
    }
    let mut rows = Vec::new();
    let mut name_width = "METRIC".len();
    for s in series {
        let mut name = s
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        if let Some(Value::Obj(labels)) = s.get("labels") {
            if !labels.is_empty() {
                let kv: Vec<String> = labels
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                    .collect();
                name.push_str(&format!("{{{}}}", kv.join(",")));
            }
        }
        let kind = s.get("kind").and_then(Value::as_str).unwrap_or("?");
        let points: Vec<f64> = s
            .get("points")
            .and_then(Value::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(Value::as_f64)
            .collect();
        name_width = name_width.max(name.len());
        rows.push((name, kind.to_string(), points));
    }
    out.push_str(&format!(
        "{:<name_width$}  {:<9}  {:>10}  {}\n",
        "METRIC", "KIND", "LAST", "SPARKLINE"
    ));
    for (name, kind, points) in rows {
        let last = points.last().copied().unwrap_or(0.0);
        out.push_str(&format!(
            "{name:<name_width$}  {kind:<9}  {:>10}  {}\n",
            fmt_point(last),
            sparkline(&points)
        ));
    }
    Ok(out)
}

/// Scales points onto eight bar glyphs; a flat series renders as a run
/// of low bars.
fn sparkline(points: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = points.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = points.iter().copied().fold(f64::INFINITY, f64::min);
    points
        .iter()
        .map(|p| {
            if max > min {
                let idx = ((p - min) / (max - min) * 7.0).round() as usize;
                BARS[idx.min(7)]
            } else {
                BARS[0]
            }
        })
        .collect()
}

/// Formats a sample point: integers without a fraction, everything else
/// with two decimals.
fn fmt_point(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Renders one daemon response for humans; typed errors become the
/// process's failure message (exit code 1).
fn render_ctl_response(resp: CtlResponse) -> Result<(), String> {
    match resp {
        CtlResponse::Status(s) => {
            println!(
                "now {} ns | utilization {:.2} | {} chain(s), {} queued deploy(s)",
                s.now_ns,
                s.utilization,
                s.chains.len(),
                s.pending_admissions
            );
            for c in &s.chains {
                let placements: Vec<String> = c
                    .vnfs
                    .iter()
                    .map(|(vnf, container)| format!("{vnf}→{container}"))
                    .collect();
                println!(
                    "  {}: cookie={} rules={} [{}]",
                    c.name,
                    c.cookie,
                    c.rules,
                    placements.join(", ")
                );
            }
            println!(
                "deploys={} failures={} teardowns={} recoveries={} recovery_failures={} \
                 rollbacks={} rejected={} events={}",
                s.deploys,
                s.deploy_failures,
                s.teardowns,
                s.recoveries,
                s.recovery_failures,
                s.rollbacks,
                s.admission_rejected,
                s.events
            );
        }
        CtlResponse::Deployed(d) => {
            for c in &d.chains {
                let placements: Vec<String> = c
                    .vnfs
                    .iter()
                    .map(|(vnf, container)| format!("{vnf}→{container}"))
                    .collect();
                println!(
                    "deployed {}: [{}] {} rules",
                    c.name,
                    placements.join(", "),
                    c.rules
                );
            }
            println!(
                "setup: total {} ns (netconf {} ns, steering {} ns)",
                d.total_ns, d.netconf_ns, d.steering_ns
            );
        }
        CtlResponse::Queued {
            position,
            utilization,
        } => println!("queued at position {position} (utilization {utilization:.2})"),
        CtlResponse::ToreDown { chain } => println!("torn down {chain}"),
        CtlResponse::Advanced { now_ns } => println!("advanced to {now_ns} ns"),
        CtlResponse::FaultArmed { events } => println!("fault plan armed: {events} event(s)"),
        CtlResponse::Healed {
            recoveries,
            failures,
        } => println!("healed: recoveries={recoveries} failures={failures}"),
        CtlResponse::Metrics { body, .. } => print!("{body}"),
        CtlResponse::Sla(verdicts) => {
            for v in &verdicts {
                println!(
                    "{}: {} delivered={} dropped={} loss={:.3} max_latency={}{}",
                    v.chain,
                    if v.pass { "PASS" } else { "FAIL" },
                    v.delivered,
                    v.dropped,
                    v.loss,
                    v.max_latency_ns
                        .map(|ns| format!("{ns}ns"))
                        .unwrap_or_else(|| "-".into()),
                    if v.violations.is_empty() {
                        String::new()
                    } else {
                        format!(" ({})", v.violations.join("; "))
                    }
                );
            }
        }
        CtlResponse::Series { body } => print!("{body}"),
        CtlResponse::Journal { body } => print!("{body}"),
        CtlResponse::Watching { topics } => {
            let labels: Vec<&str> = topics.iter().map(|t| t.label()).collect();
            println!("watching: {}", labels.join(", "));
        }
        CtlResponse::TrafficStarted => println!("traffic started"),
        CtlResponse::ShuttingDown => println!("daemon shutting down"),
        CtlResponse::Error(e) => return Err(e.to_string()),
    }
    Ok(())
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if let Some(args) = o.daemon.clone() {
        let d = match parse_daemon_args(args.into_iter()) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: {e}\n{DAEMON_USAGE}");
                return ExitCode::from(2);
            }
        };
        return match run_daemon(d, true) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let result = if let Some(args) = o.ctl.clone() {
        run_ctl(args)
    } else if let Some(args) = o.top.clone() {
        run_top(args)
    } else if o.soak {
        run_soak_cmd(o)
    } else if o.metrics {
        run_metrics(o)
    } else if o.trace {
        run_trace(o)
    } else if let Some(spec_file) = o.domains.clone() {
        run_domains(o, &spec_file)
    } else {
        run(o)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
