//! `escaped`: the long-running ESCAPE-RS daemon.
//!
//! Builds one live environment (topology + mapping algorithm + seed),
//! then serves the typed control protocol on a unix socket until a
//! `shutdown` verb or SIGINT/SIGTERM arrives. Drive it with
//! `escape ctl <verb>`. See `escape-ctl`'s crate docs for the protocol
//! and DESIGN.md §12 for the architecture.

use escape_ctl::launch::{parse_daemon_args, run_daemon, DAEMON_USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    let o = match parse_daemon_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{DAEMON_USAGE}");
            return ExitCode::from(2);
        }
    };
    match run_daemon(o, true) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
