//! The resource topology: the orchestrator's view of the infrastructure.

use crate::jsonutil::{arr_field, f64_field, str_field, u64_field};
use escape_json::Value;
use std::collections::{BinaryHeap, HashMap};

/// What a topology node is. In the JSON form this is a `"kind"` tag
/// (`"switch"` / `"container"` / `"sap"`) with the container capacity
/// fields inlined next to it.
#[derive(Debug, Clone, PartialEq)]
pub enum TopoNodeKind {
    /// An OpenFlow switch.
    Switch,
    /// A VNF container: compute where VNFs can be placed.
    Container { cpu: f64, mem_mb: u64 },
    /// A service access point: where user traffic enters/leaves.
    Sap,
}

/// One topology node.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoNode {
    pub name: String,
    pub kind: TopoNodeKind,
}

/// One bidirectional link.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoLink {
    pub a: String,
    pub b: String,
    pub bandwidth_mbps: f64,
    pub delay_us: u64,
}

/// The infrastructure topology.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResourceTopology {
    pub nodes: Vec<TopoNode>,
    pub links: Vec<TopoLink>,
}

impl ResourceTopology {
    /// An empty topology.
    pub fn new() -> ResourceTopology {
        ResourceTopology::default()
    }

    /// Adds a switch.
    pub fn add_switch(&mut self, name: impl Into<String>) -> &mut Self {
        self.nodes.push(TopoNode {
            name: name.into(),
            kind: TopoNodeKind::Switch,
        });
        self
    }

    /// Adds a VNF container with capacity.
    pub fn add_container(&mut self, name: impl Into<String>, cpu: f64, mem_mb: u64) -> &mut Self {
        self.nodes.push(TopoNode {
            name: name.into(),
            kind: TopoNodeKind::Container { cpu, mem_mb },
        });
        self
    }

    /// Adds a SAP.
    pub fn add_sap(&mut self, name: impl Into<String>) -> &mut Self {
        self.nodes.push(TopoNode {
            name: name.into(),
            kind: TopoNodeKind::Sap,
        });
        self
    }

    /// Adds a link.
    pub fn add_link(
        &mut self,
        a: impl Into<String>,
        b: impl Into<String>,
        bandwidth_mbps: f64,
        delay_us: u64,
    ) -> &mut Self {
        self.links.push(TopoLink {
            a: a.into(),
            b: b.into(),
            bandwidth_mbps,
            delay_us,
        });
        self
    }

    /// Finds a node by name.
    pub fn node(&self, name: &str) -> Option<&TopoNode> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// All container nodes.
    pub fn containers(&self) -> impl Iterator<Item = &TopoNode> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, TopoNodeKind::Container { .. }))
    }

    /// All switch nodes.
    pub fn switches(&self) -> impl Iterator<Item = &TopoNode> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, TopoNodeKind::Switch))
    }

    /// All SAPs.
    pub fn saps(&self) -> impl Iterator<Item = &TopoNode> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, TopoNodeKind::Sap))
    }

    /// Neighbors of a node with the connecting link.
    pub fn neighbors<'a>(&'a self, name: &'a str) -> impl Iterator<Item = (&'a str, &'a TopoLink)> {
        self.links.iter().filter_map(move |l| {
            if l.a == name {
                Some((l.b.as_str(), l))
            } else if l.b == name {
                Some((l.a.as_str(), l))
            } else {
                None
            }
        })
    }

    /// The subgraph induced by the named nodes: those nodes (in original
    /// order) plus every link with both endpoints in the set. Used by the
    /// multi-domain partitioner to carve per-domain local topologies.
    pub fn induced<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> ResourceTopology {
        let keep: std::collections::HashSet<&str> = names.into_iter().collect();
        ResourceTopology {
            nodes: self
                .nodes
                .iter()
                .filter(|n| keep.contains(n.name.as_str()))
                .cloned()
                .collect(),
            links: self
                .links
                .iter()
                .filter(|l| keep.contains(l.a.as_str()) && keep.contains(l.b.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Structural validation: link endpoints exist, no duplicate names,
    /// positive capacities.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = HashMap::new();
        for n in &self.nodes {
            if seen.insert(n.name.clone(), ()).is_some() {
                return Err(format!("duplicate node name {:?}", n.name));
            }
            if let TopoNodeKind::Container { cpu, .. } = n.kind {
                if cpu <= 0.0 {
                    return Err(format!("container {:?} has non-positive cpu", n.name));
                }
            }
        }
        for l in &self.links {
            for end in [&l.a, &l.b] {
                if !seen.contains_key(end) {
                    return Err(format!("link references unknown node {end:?}"));
                }
            }
            if l.bandwidth_mbps <= 0.0 {
                return Err(format!("link {}-{} has non-positive bandwidth", l.a, l.b));
            }
        }
        Ok(())
    }

    /// Dijkstra by cumulative delay. Returns (path node names, total
    /// delay µs), or `None` if unreachable. Links with residual bandwidth
    /// below `min_bw_mbps` are skipped (pass 0.0 to ignore bandwidth).
    pub fn shortest_path(
        &self,
        from: &str,
        to: &str,
        min_bw_mbps: f64,
        residual_bw: Option<&HashMap<(String, String), f64>>,
    ) -> Option<(Vec<String>, u64)> {
        let mut dist: HashMap<&str, u64> = HashMap::new();
        let mut prev: HashMap<&str, &str> = HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(from, 0);
        heap.push(std::cmp::Reverse((0u64, from)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if u == to {
                break;
            }
            if dist.get(u).is_some_and(|&best| d > best) {
                continue;
            }
            for (v, link) in self.neighbors(u) {
                let available = match residual_bw {
                    Some(res) => *res
                        .get(&link_key(&link.a, &link.b))
                        .unwrap_or(&link.bandwidth_mbps),
                    None => link.bandwidth_mbps,
                };
                if available < min_bw_mbps {
                    continue;
                }
                let nd = d + link.delay_us;
                if dist.get(v).is_none_or(|&best| nd < best) {
                    dist.insert(v, nd);
                    prev.insert(v, u);
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        let total = *dist.get(to)?;
        let mut path = vec![to.to_string()];
        let mut cur = to;
        while cur != from {
            cur = prev.get(cur)?;
            path.push(cur.to_string());
        }
        path.reverse();
        Some((path, total))
    }

    /// JSON serialization (the MiniEdit-substitute file format).
    pub fn to_json(&self) -> String {
        Value::obj()
            .set(
                "nodes",
                Value::Arr(self.nodes.iter().map(TopoNode::to_value).collect()),
            )
            .set(
                "links",
                Value::Arr(self.links.iter().map(TopoLink::to_value).collect()),
            )
            .to_string_pretty()
    }

    /// JSON deserialization.
    pub fn from_json(s: &str) -> Result<ResourceTopology, String> {
        let v = Value::parse(s)?;
        let nodes = arr_field(&v, "nodes", "topology")?
            .iter()
            .map(TopoNode::from_value)
            .collect::<Result<_, _>>()?;
        let links = arr_field(&v, "links", "topology")?
            .iter()
            .map(TopoLink::from_value)
            .collect::<Result<_, _>>()?;
        Ok(ResourceTopology { nodes, links })
    }
}

impl TopoNode {
    fn to_value(&self) -> Value {
        let v = Value::obj().set("name", self.name.as_str());
        match &self.kind {
            TopoNodeKind::Switch => v.set("kind", "switch"),
            TopoNodeKind::Container { cpu, mem_mb } => v
                .set("kind", "container")
                .set("cpu", *cpu)
                .set("mem_mb", *mem_mb),
            TopoNodeKind::Sap => v.set("kind", "sap"),
        }
    }

    fn from_value(v: &Value) -> Result<TopoNode, String> {
        let name = str_field(v, "name", "node")?;
        let ctx = format!("node {name:?}");
        let kind = match str_field(v, "kind", &ctx)?.as_str() {
            "switch" => TopoNodeKind::Switch,
            "sap" => TopoNodeKind::Sap,
            "container" => TopoNodeKind::Container {
                cpu: f64_field(v, "cpu", &ctx)?,
                mem_mb: u64_field(v, "mem_mb", &ctx)?,
            },
            other => return Err(format!("{ctx}: unknown kind {other:?}")),
        };
        Ok(TopoNode { name, kind })
    }
}

impl TopoLink {
    fn to_value(&self) -> Value {
        Value::obj()
            .set("a", self.a.as_str())
            .set("b", self.b.as_str())
            .set("bandwidth_mbps", self.bandwidth_mbps)
            .set("delay_us", self.delay_us)
    }

    fn from_value(v: &Value) -> Result<TopoLink, String> {
        let a = str_field(v, "a", "link")?;
        let ctx = format!("link from {a:?}");
        Ok(TopoLink {
            b: str_field(v, "b", &ctx)?,
            bandwidth_mbps: f64_field(v, "bandwidth_mbps", &ctx)?,
            delay_us: u64_field(v, "delay_us", &ctx)?,
            a,
        })
    }
}

/// Canonical (sorted) key for a link's residual-bandwidth map.
pub fn link_key(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

/// Standard topology shapes used by examples, tests and benches.
pub mod builders {
    use super::*;

    /// `sap0 - s0 - s1 - ... - s(n-1) - sap1`, one container per switch.
    /// Containers get `cpu` cores each.
    pub fn linear(n_switches: usize, cpu: f64) -> ResourceTopology {
        let mut t = ResourceTopology::new();
        t.add_sap("sap0").add_sap("sap1");
        for i in 0..n_switches {
            t.add_switch(format!("s{i}"));
            t.add_container(format!("c{i}"), cpu, 2048);
            t.add_link(format!("s{i}"), format!("c{i}"), 1000.0, 20);
            if i > 0 {
                t.add_link(format!("s{}", i - 1), format!("s{i}"), 1000.0, 50);
            }
        }
        t.add_link("sap0", "s0", 1000.0, 10);
        t.add_link("sap1", format!("s{}", n_switches - 1), 1000.0, 10);
        t
    }

    /// One core switch with `n_leaves` edge switches, each with a
    /// container and a SAP.
    pub fn star(n_leaves: usize, cpu: f64) -> ResourceTopology {
        let mut t = ResourceTopology::new();
        t.add_switch("core");
        for i in 0..n_leaves {
            t.add_switch(format!("s{i}"));
            t.add_container(format!("c{i}"), cpu, 2048);
            t.add_sap(format!("sap{i}"));
            t.add_link("core", format!("s{i}"), 1000.0, 50);
            t.add_link(format!("s{i}"), format!("c{i}"), 1000.0, 20);
            t.add_link(format!("s{i}"), format!("sap{i}"), 1000.0, 10);
        }
        t
    }

    /// A complete binary tree of switches of the given `depth`; leaf
    /// switches carry a container and a SAP each.
    pub fn tree(depth: u32, cpu: f64) -> ResourceTopology {
        let mut t = ResourceTopology::new();
        let levels: Vec<usize> = (0..=depth).map(|d| 1usize << d).collect();
        let mut idx = 0usize;
        let mut names: Vec<Vec<String>> = Vec::new();
        for (d, &count) in levels.iter().enumerate() {
            let mut level = Vec::new();
            for _ in 0..count {
                let name = format!("s{idx}");
                idx += 1;
                t.add_switch(&name);
                level.push(name);
            }
            if d > 0 {
                for (i, name) in level.iter().enumerate() {
                    let parent = &names[d - 1][i / 2];
                    t.add_link(parent.clone(), name.clone(), 1000.0, 50);
                }
            }
            names.push(level);
        }
        for (i, leaf) in names[depth as usize].clone().iter().enumerate() {
            t.add_container(format!("c{i}"), cpu, 2048);
            t.add_sap(format!("sap{i}"));
            t.add_link(leaf.clone(), format!("c{i}"), 1000.0, 20);
            t.add_link(leaf.clone(), format!("sap{i}"), 1000.0, 10);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_shapes_validate() {
        builders::linear(5, 4.0).validate().unwrap();
        builders::star(8, 2.0).validate().unwrap();
        builders::tree(3, 2.0).validate().unwrap();
    }

    #[test]
    fn linear_counts() {
        let t = builders::linear(4, 2.0);
        assert_eq!(t.switches().count(), 4);
        assert_eq!(t.containers().count(), 4);
        assert_eq!(t.saps().count(), 2);
        // links: 4 switch-container + 3 inter-switch + 2 sap = 9
        assert_eq!(t.links.len(), 9);
    }

    #[test]
    fn validation_catches_errors() {
        let mut t = ResourceTopology::new();
        t.add_switch("a").add_switch("a");
        assert!(t.validate().unwrap_err().contains("duplicate"));

        let mut t = ResourceTopology::new();
        t.add_switch("a").add_link("a", "ghost", 10.0, 1);
        assert!(t.validate().unwrap_err().contains("ghost"));

        let mut t = ResourceTopology::new();
        t.add_container("c", 0.0, 64);
        assert!(t.validate().unwrap_err().contains("cpu"));

        let mut t = ResourceTopology::new();
        t.add_switch("a").add_switch("b").add_link("a", "b", 0.0, 1);
        assert!(t.validate().unwrap_err().contains("bandwidth"));
    }

    #[test]
    fn shortest_path_prefers_low_delay() {
        let mut t = ResourceTopology::new();
        t.add_switch("a").add_switch("b").add_switch("c");
        t.add_link("a", "b", 100.0, 100);
        t.add_link("b", "c", 100.0, 100);
        t.add_link("a", "c", 100.0, 500); // direct but slower
        let (path, delay) = t.shortest_path("a", "c", 0.0, None).unwrap();
        assert_eq!(path, vec!["a", "b", "c"]);
        assert_eq!(delay, 200);
    }

    #[test]
    fn shortest_path_respects_bandwidth_floor() {
        let mut t = ResourceTopology::new();
        t.add_switch("a").add_switch("b").add_switch("c");
        t.add_link("a", "b", 10.0, 100);
        t.add_link("b", "c", 10.0, 100);
        t.add_link("a", "c", 1000.0, 500);
        let (path, _) = t.shortest_path("a", "c", 100.0, None).unwrap();
        assert_eq!(path, vec!["a", "c"], "thin path excluded");
        assert!(t.shortest_path("a", "c", 5000.0, None).is_none());
    }

    #[test]
    fn shortest_path_uses_residuals() {
        let mut t = ResourceTopology::new();
        t.add_switch("a").add_switch("b");
        t.add_link("a", "b", 100.0, 10);
        let mut residual = HashMap::new();
        residual.insert(link_key("a", "b"), 5.0);
        assert!(t.shortest_path("a", "b", 50.0, Some(&residual)).is_none());
        assert!(t.shortest_path("a", "b", 5.0, Some(&residual)).is_some());
    }

    #[test]
    fn json_roundtrip() {
        let t = builders::star(3, 2.0);
        let json = t.to_json();
        let back = ResourceTopology::from_json(&json).unwrap();
        assert_eq!(t, back);
        assert!(ResourceTopology::from_json("{nope}").is_err());
    }

    #[test]
    fn neighbors_are_symmetric() {
        let t = builders::linear(3, 1.0);
        let from_s1: Vec<&str> = t.neighbors("s1").map(|(n, _)| n).collect();
        assert!(from_s1.contains(&"s0"));
        assert!(from_s1.contains(&"s2"));
        assert!(from_s1.contains(&"c1"));
    }
}
