//! The abstract service graph: VNF requests and chains.

use crate::jsonutil::{arr_field, f64_field, str_field, str_items, u64_field};
use escape_json::Value;
use std::collections::HashSet;

/// A requested VNF instance: which catalog type, how much resource.
#[derive(Debug, Clone, PartialEq)]
pub struct VnfReq {
    /// Instance name, unique within the service graph.
    pub name: String,
    /// Catalog type (e.g. "firewall") — resolved by the orchestrator.
    pub vnf_type: String,
    /// CPU cores requested.
    pub cpu: f64,
    /// Memory requested (MB).
    pub mem_mb: u64,
    /// Catalog parameter overrides for this instance (e.g. firewall
    /// rules), forwarded verbatim to `initiateVNF`. Omitted from the
    /// JSON form when empty.
    pub params: Vec<(String, String)>,
    /// Raw Click configuration overriding the catalog template — the
    /// "develop your own VNF" path. Sent as `initiateVNF`'s
    /// `click-config`; `vnf_type` then only labels the instance.
    /// Omitted from the JSON form when absent.
    pub click_config: Option<String>,
}

/// A service-level agreement attached to a chain: observed-traffic
/// objectives the flight recorder checks after a run (distinct from
/// `max_delay_us`, which is the admission-time budget the orchestrator
/// plans against).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Sla {
    /// Maximum acceptable end-to-end latency per delivered packet (µs).
    pub max_latency_us: Option<u64>,
    /// Maximum acceptable loss ratio in `0.0..=1.0`.
    pub max_loss: Option<f64>,
}

impl Sla {
    /// True when no objective is set (vacuously satisfied).
    pub fn is_empty(&self) -> bool {
        self.max_latency_us.is_none() && self.max_loss.is_none()
    }
}

/// One service chain: an ordered walk SAP → VNF… → SAP with end-to-end
/// requirements.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// Chain name, unique within the service graph.
    pub name: String,
    /// Hops: first and last are SAP names, the middle are VNF names.
    pub hops: Vec<String>,
    /// Bandwidth to reserve on every traversed link (Mbit/s).
    pub bandwidth_mbps: f64,
    /// End-to-end delay budget (µs); `None` = best effort.
    pub max_delay_us: Option<u64>,
    /// Post-run objectives checked against recorded traffic.
    pub sla: Option<Sla>,
}

/// The abstract service description the service layer hands to the
/// orchestrator (what the paper's SG editor produces).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceGraph {
    /// SAP names referenced by chains; must exist in the topology.
    pub saps: Vec<String>,
    pub vnfs: Vec<VnfReq>,
    pub chains: Vec<Chain>,
}

impl ServiceGraph {
    /// An empty service graph.
    pub fn new() -> ServiceGraph {
        ServiceGraph::default()
    }

    /// Builder: declare a SAP.
    pub fn sap(mut self, name: impl Into<String>) -> Self {
        self.saps.push(name.into());
        self
    }

    /// Builder: request a VNF.
    pub fn vnf(mut self, name: &str, vnf_type: &str, cpu: f64, mem_mb: u64) -> Self {
        self.vnfs.push(VnfReq {
            name: name.into(),
            vnf_type: vnf_type.into(),
            cpu,
            mem_mb,
            params: Vec::new(),
            click_config: None,
        });
        self
    }

    /// Builder: give the most recently added VNF a raw Click config
    /// instead of a catalog template. Panics if no VNF was added yet.
    pub fn with_click_config(mut self, config: &str) -> Self {
        let v = self
            .vnfs
            .last_mut()
            .expect("with_click_config needs a preceding vnf()");
        v.click_config = Some(config.to_string());
        self
    }

    /// Builder: set catalog parameter overrides on the most recently
    /// added VNF. Panics if no VNF was added yet.
    pub fn with_params(mut self, params: &[(&str, &str)]) -> Self {
        let v = self
            .vnfs
            .last_mut()
            .expect("with_params needs a preceding vnf()");
        v.params = params
            .iter()
            .map(|(k, w)| (k.to_string(), w.to_string()))
            .collect();
        self
    }

    /// Builder: add a chain through the named hops.
    pub fn chain(
        mut self,
        name: &str,
        hops: &[&str],
        bandwidth_mbps: f64,
        max_delay_us: Option<u64>,
    ) -> Self {
        self.chains.push(Chain {
            name: name.into(),
            hops: hops.iter().map(|s| s.to_string()).collect(),
            bandwidth_mbps,
            max_delay_us,
            sla: None,
        });
        self
    }

    /// Builder: attach an SLA to the most recently added chain. Panics
    /// if no chain was added yet.
    pub fn with_sla(mut self, sla: Sla) -> Self {
        let c = self
            .chains
            .last_mut()
            .expect("with_sla needs a preceding chain()");
        c.sla = Some(sla);
        self
    }

    /// Finds a VNF request by name.
    pub fn vnf_named(&self, name: &str) -> Option<&VnfReq> {
        self.vnfs.iter().find(|v| v.name == name)
    }

    /// Total CPU requested across all VNFs.
    pub fn total_cpu(&self) -> f64 {
        self.vnfs.iter().map(|v| v.cpu).sum()
    }

    /// Structural validation: unique names; chains start/end at declared
    /// SAPs and traverse declared VNFs; positive requirements.
    pub fn validate(&self) -> Result<(), String> {
        let mut names = HashSet::new();
        for s in &self.saps {
            if !names.insert(s.as_str()) {
                return Err(format!("duplicate name {s:?}"));
            }
        }
        for v in &self.vnfs {
            if !names.insert(v.name.as_str()) {
                return Err(format!("duplicate name {:?}", v.name));
            }
            if v.cpu <= 0.0 {
                return Err(format!("vnf {:?} requests non-positive cpu", v.name));
            }
        }
        let saps: HashSet<&str> = self.saps.iter().map(|s| s.as_str()).collect();
        let vnfs: HashSet<&str> = self.vnfs.iter().map(|v| v.name.as_str()).collect();
        let mut chain_names = HashSet::new();
        for c in &self.chains {
            if !chain_names.insert(c.name.as_str()) {
                return Err(format!("duplicate chain name {:?}", c.name));
            }
            if c.hops.len() < 2 {
                return Err(format!("chain {:?} needs at least two hops", c.name));
            }
            let first = c.hops.first().unwrap().as_str();
            let last = c.hops.last().unwrap().as_str();
            if !saps.contains(first) || !saps.contains(last) {
                return Err(format!("chain {:?} must start and end at SAPs", c.name));
            }
            for mid in &c.hops[1..c.hops.len() - 1] {
                if !vnfs.contains(mid.as_str()) {
                    return Err(format!(
                        "chain {:?} hop {:?} is not a declared VNF",
                        c.name, mid
                    ));
                }
            }
            if c.bandwidth_mbps <= 0.0 {
                return Err(format!("chain {:?} has non-positive bandwidth", c.name));
            }
            if let Some(sla) = &c.sla {
                if let Some(loss) = sla.max_loss {
                    if !(0.0..=1.0).contains(&loss) {
                        return Err(format!(
                            "chain {:?} sla max_loss must be within 0..=1",
                            c.name
                        ));
                    }
                }
            }
        }
        // Every VNF should appear in some chain (orphans are a spec bug).
        for v in &self.vnfs {
            let used = self.chains.iter().any(|c| c.hops.contains(&v.name));
            if !used {
                return Err(format!("vnf {:?} is not used by any chain", v.name));
            }
        }
        Ok(())
    }

    /// JSON serialization (the SG editor's save format).
    pub fn to_json(&self) -> String {
        Value::obj()
            .set("saps", self.saps.clone())
            .set(
                "vnfs",
                Value::Arr(self.vnfs.iter().map(VnfReq::to_value).collect()),
            )
            .set(
                "chains",
                Value::Arr(self.chains.iter().map(Chain::to_value).collect()),
            )
            .to_string_pretty()
    }

    /// JSON deserialization.
    pub fn from_json(s: &str) -> Result<ServiceGraph, String> {
        let v = Value::parse(s)?;
        let saps = str_items(arr_field(&v, "saps", "service graph")?, "saps")?;
        let vnfs = arr_field(&v, "vnfs", "service graph")?
            .iter()
            .map(VnfReq::from_value)
            .collect::<Result<_, _>>()?;
        let chains = arr_field(&v, "chains", "service graph")?
            .iter()
            .map(Chain::from_value)
            .collect::<Result<_, _>>()?;
        Ok(ServiceGraph { saps, vnfs, chains })
    }
}

impl VnfReq {
    fn to_value(&self) -> Value {
        let mut v = Value::obj()
            .set("name", self.name.as_str())
            .set("vnf_type", self.vnf_type.as_str())
            .set("cpu", self.cpu)
            .set("mem_mb", self.mem_mb);
        if !self.params.is_empty() {
            v = v.set(
                "params",
                Value::Arr(
                    self.params
                        .iter()
                        .map(|(k, w)| Value::Arr(vec![k.as_str().into(), w.as_str().into()]))
                        .collect(),
                ),
            );
        }
        if let Some(cfg) = &self.click_config {
            v = v.set("click_config", cfg.as_str());
        }
        v
    }

    fn from_value(v: &Value) -> Result<VnfReq, String> {
        let name = str_field(v, "name", "vnf")?;
        let ctx = format!("vnf {name:?}");
        let params = match v.get("params") {
            None => Vec::new(),
            Some(p) => p
                .as_arr()
                .ok_or_else(|| format!("{ctx}: params must be an array"))?
                .iter()
                .map(|pair| {
                    let kv = pair.as_arr().filter(|kv| kv.len() == 2);
                    match kv.map(|kv| (kv[0].as_str(), kv[1].as_str())) {
                        Some((Some(k), Some(w))) => Ok((k.to_string(), w.to_string())),
                        _ => Err(format!("{ctx}: each param must be a [key, value] pair")),
                    }
                })
                .collect::<Result<_, _>>()?,
        };
        let click_config = match v.get("click_config") {
            None => None,
            Some(c) if c.is_null() => None,
            Some(c) => Some(
                c.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("{ctx}: click_config must be a string"))?,
            ),
        };
        Ok(VnfReq {
            vnf_type: str_field(v, "vnf_type", &ctx)?,
            cpu: f64_field(v, "cpu", &ctx)?,
            mem_mb: u64_field(v, "mem_mb", &ctx)?,
            params,
            click_config,
            name,
        })
    }
}

impl Chain {
    fn to_value(&self) -> Value {
        let mut v = Value::obj()
            .set("name", self.name.as_str())
            .set("hops", self.hops.clone())
            .set("bandwidth_mbps", self.bandwidth_mbps)
            .set("max_delay_us", self.max_delay_us);
        if let Some(sla) = &self.sla {
            let mut s = Value::obj();
            if let Some(lat) = sla.max_latency_us {
                s = s.set("max_latency_us", lat);
            }
            if let Some(loss) = sla.max_loss {
                s = s.set("max_loss", loss);
            }
            v = v.set("sla", s);
        }
        v
    }

    fn from_value(v: &Value) -> Result<Chain, String> {
        let name = str_field(v, "name", "chain")?;
        let ctx = format!("chain {name:?}");
        let max_delay_us = match v.get("max_delay_us") {
            None => None,
            Some(d) if d.is_null() => None,
            Some(d) => Some(
                d.as_u64()
                    .ok_or_else(|| format!("{ctx}: max_delay_us must be an integer"))?,
            ),
        };
        let sla = match v.get("sla") {
            None => None,
            Some(s) if s.is_null() => None,
            Some(s) => {
                let max_latency_us =
                    match s.get("max_latency_us") {
                        None => None,
                        Some(l) if l.is_null() => None,
                        Some(l) => Some(l.as_u64().ok_or_else(|| {
                            format!("{ctx}: sla max_latency_us must be an integer")
                        })?),
                    };
                let max_loss = match s.get("max_loss") {
                    None => None,
                    Some(l) if l.is_null() => None,
                    Some(l) => Some(
                        l.as_f64()
                            .ok_or_else(|| format!("{ctx}: sla max_loss must be a number"))?,
                    ),
                };
                Some(Sla {
                    max_latency_us,
                    max_loss,
                })
            }
        };
        Ok(Chain {
            hops: str_items(arr_field(v, "hops", &ctx)?, &ctx)?,
            bandwidth_mbps: f64_field(v, "bandwidth_mbps", &ctx)?,
            max_delay_us,
            sla,
            name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> ServiceGraph {
        ServiceGraph::new()
            .sap("sap0")
            .sap("sap1")
            .vnf("fw", "firewall", 1.0, 256)
            .vnf("shaper", "rate_limiter", 0.5, 128)
            .chain("c1", &["sap0", "fw", "shaper", "sap1"], 100.0, Some(5_000))
    }

    #[test]
    fn valid_graph_passes() {
        demo().validate().unwrap();
        assert_eq!(demo().total_cpu(), 1.5);
        assert_eq!(demo().vnf_named("fw").unwrap().vnf_type, "firewall");
    }

    #[test]
    fn chains_must_terminate_at_saps() {
        let g =
            ServiceGraph::new()
                .sap("a")
                .vnf("v", "t", 1.0, 1)
                .chain("c", &["v", "a"], 1.0, None);
        assert!(g.validate().unwrap_err().contains("SAP"));
    }

    #[test]
    fn middle_hops_must_be_vnfs() {
        let g = ServiceGraph::new()
            .sap("a")
            .sap("b")
            .vnf("v", "t", 1.0, 1)
            .chain("c", &["a", "ghost", "b"], 1.0, None);
        assert!(g.validate().unwrap_err().contains("ghost"));
    }

    #[test]
    fn orphan_vnfs_rejected() {
        let g = ServiceGraph::new()
            .sap("a")
            .sap("b")
            .vnf("used", "t", 1.0, 1)
            .vnf("orphan", "t", 1.0, 1)
            .chain("c", &["a", "used", "b"], 1.0, None);
        assert!(g.validate().unwrap_err().contains("orphan"));
    }

    #[test]
    fn duplicates_rejected() {
        let g = ServiceGraph::new().sap("x").sap("x");
        assert!(g.validate().is_err());
        let g = ServiceGraph::new()
            .sap("a")
            .sap("b")
            .vnf("v", "t", 1.0, 1)
            .chain("c", &["a", "v", "b"], 1.0, None)
            .chain("c", &["a", "v", "b"], 1.0, None);
        assert!(g.validate().unwrap_err().contains("chain name"));
    }

    #[test]
    fn requirement_sanity() {
        let g = ServiceGraph::new()
            .sap("a")
            .sap("b")
            .vnf("v", "t", -1.0, 1)
            .chain("c", &["a", "v", "b"], 1.0, None);
        assert!(g.validate().unwrap_err().contains("cpu"));
        let g = ServiceGraph::new()
            .sap("a")
            .sap("b")
            .vnf("v", "t", 1.0, 1)
            .chain("c", &["a", "v", "b"], 0.0, None);
        assert!(g.validate().unwrap_err().contains("bandwidth"));
    }

    #[test]
    fn direct_sap_to_sap_chain_is_legal() {
        let g = ServiceGraph::new()
            .sap("a")
            .sap("b")
            .chain("direct", &["a", "b"], 10.0, None);
        g.validate().unwrap();
    }

    #[test]
    fn json_roundtrip() {
        let g = demo();
        let back = ServiceGraph::from_json(&g.to_json()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn sla_round_trips_and_absent_sla_stays_absent() {
        let g = demo().with_sla(Sla {
            max_latency_us: Some(4_000),
            max_loss: Some(0.01),
        });
        g.validate().unwrap();
        let back = ServiceGraph::from_json(&g.to_json()).unwrap();
        assert_eq!(g, back);
        assert_eq!(back.chains[0].sla.unwrap().max_latency_us, Some(4_000));
        // A graph without SLAs omits the field entirely.
        let plain = demo();
        assert!(!plain.to_json().contains("sla"));
        assert_eq!(
            ServiceGraph::from_json(&plain.to_json()).unwrap().chains[0].sla,
            None
        );
    }

    #[test]
    fn sla_loss_must_be_a_ratio() {
        let g = demo().with_sla(Sla {
            max_latency_us: None,
            max_loss: Some(1.5),
        });
        assert!(g.validate().unwrap_err().contains("max_loss"));
    }
}
