//! # escape-sg
//!
//! Service graphs and resource topologies — the models the paper's GUI
//! (MiniEdit-based) produces and the orchestrator consumes.
//!
//! * [`topo`] — the infrastructure view: switches, VNF containers (with
//!   CPU/memory capacity), SAPs (service access points) and links (with
//!   bandwidth/delay), plus standard topology generators (linear, star,
//!   tree, fat-tree-lite) used across tests and benches;
//! * [`sg`] — the abstract service view: VNF instances with resource
//!   requirements and *chains* — ordered SAP → VNF… → SAP paths with
//!   bandwidth and end-to-end delay requirements (the "delay or bandwidth
//!   requirement on a sub-graph" of the paper);
//! * [`dsl`] — the textual format standing in for the GUI: a line-based
//!   language describing both topologies and service graphs;
//! * JSON (de)serialization on every model via `escape-json`, the
//!   machine interchange format.

pub mod dsl;
mod jsonutil;
pub mod sg;
pub mod topo;

pub use dsl::{parse_service_graph, parse_topology, DslError};
pub use sg::{Chain, ServiceGraph, Sla, VnfReq};
pub use topo::{ResourceTopology, TopoLink, TopoNode, TopoNodeKind};
