//! Field-extraction helpers shared by the JSON loaders in [`crate::sg`]
//! and [`crate::topo`]. All errors name the missing/mistyped field so
//! hand-edited files fail with actionable messages.

use escape_json::Value;

pub(crate) fn str_field(v: &Value, key: &str, ctx: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: missing or non-string field {key:?}"))
}

pub(crate) fn f64_field(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{ctx}: missing or non-numeric field {key:?}"))
}

pub(crate) fn u64_field(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer field {key:?}"))
}

pub(crate) fn arr_field<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a [Value], String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{ctx}: missing or non-array field {key:?}"))
}

pub(crate) fn str_items(items: &[Value], ctx: &str) -> Result<Vec<String>, String> {
    items
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{ctx}: expected an array of strings"))
        })
        .collect()
}
