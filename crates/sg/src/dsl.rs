//! The textual DSL standing in for the paper's MiniEdit-based GUI.
//!
//! Topology files:
//! ```text
//! # infrastructure
//! switch s0 s1
//! container c0 cpu=4 mem=2048
//! sap sap0 sap1
//! link s0 s1 bw=1000 delay=50us
//! link sap0 s0 bw=1000 delay=10us
//! link c0 s0 bw=1000 delay=20us
//! ```
//!
//! Service graph files:
//! ```text
//! sap sap0 sap1
//! vnf fw type=firewall cpu=1 mem=256
//! vnf lim type=rate_limiter cpu=0.5
//! chain c1 = sap0 -> fw -> lim -> sap1 bw=100 delay=5ms
//! ```
//!
//! Delays accept `us`, `ms` or `s` suffixes (default µs).

use crate::sg::ServiceGraph;
use crate::topo::ResourceTopology;

/// A DSL parse error with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

fn err(line: usize, message: impl Into<String>) -> DslError {
    DslError {
        line,
        message: message.into(),
    }
}

/// Splits `k=v` options out of a token list; returns (plain tokens, kv).
fn split_opts(tokens: &[&str]) -> (Vec<String>, Vec<(String, String)>) {
    let mut plain = Vec::new();
    let mut kv = Vec::new();
    for t in tokens {
        match t.split_once('=') {
            Some((k, v)) => kv.push((k.to_string(), v.to_string())),
            None => plain.push(t.to_string()),
        }
    }
    (plain, kv)
}

fn get_opt<'a>(kv: &'a [(String, String)], key: &str) -> Option<&'a str> {
    kv.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn parse_f64(
    line: usize,
    kv: &[(String, String)],
    key: &str,
    default: f64,
) -> Result<f64, DslError> {
    match get_opt(kv, key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| err(line, format!("bad {key}={v:?}"))),
    }
}

fn parse_u64(
    line: usize,
    kv: &[(String, String)],
    key: &str,
    default: u64,
) -> Result<u64, DslError> {
    match get_opt(kv, key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| err(line, format!("bad {key}={v:?}"))),
    }
}

/// Parses a delay value with optional unit suffix into microseconds.
fn parse_delay_us(line: usize, v: &str) -> Result<u64, DslError> {
    let (num, mult) = if let Some(n) = v.strip_suffix("us") {
        (n, 1)
    } else if let Some(n) = v.strip_suffix("ms") {
        (n, 1_000)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1_000_000)
    } else {
        (v, 1)
    };
    let base: f64 = num
        .parse()
        .map_err(|_| err(line, format!("bad delay {v:?}")))?;
    Ok((base * mult as f64) as u64)
}

/// Parses a topology description.
pub fn parse_topology(src: &str) -> Result<ResourceTopology, DslError> {
    let mut t = ResourceTopology::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let (plain, kv) = split_opts(&tokens[1..]);
        match tokens[0] {
            "switch" => {
                if plain.is_empty() {
                    return Err(err(line, "switch needs at least one name"));
                }
                for n in plain {
                    t.add_switch(n);
                }
            }
            "sap" => {
                if plain.is_empty() {
                    return Err(err(line, "sap needs at least one name"));
                }
                for n in plain {
                    t.add_sap(n);
                }
            }
            "container" => {
                let name = plain
                    .first()
                    .ok_or_else(|| err(line, "container needs a name"))?;
                let cpu = parse_f64(line, &kv, "cpu", 1.0)?;
                let mem = parse_u64(line, &kv, "mem", 1024)?;
                t.add_container(name.clone(), cpu, mem);
            }
            "link" => {
                if plain.len() != 2 {
                    return Err(err(line, "link needs exactly two endpoints"));
                }
                let bw = parse_f64(line, &kv, "bw", 1000.0)?;
                let delay = match get_opt(&kv, "delay") {
                    Some(v) => parse_delay_us(line, v)?,
                    None => 50,
                };
                t.add_link(plain[0].clone(), plain[1].clone(), bw, delay);
            }
            other => return Err(err(line, format!("unknown directive {other:?}"))),
        }
    }
    t.validate().map_err(|m| err(0, m))?;
    Ok(t)
}

/// Parses a service-graph description.
pub fn parse_service_graph(src: &str) -> Result<ServiceGraph, DslError> {
    let mut g = ServiceGraph::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = text.split_whitespace().collect();
        match tokens[0] {
            "sap" => {
                let (plain, _) = split_opts(&tokens[1..]);
                if plain.is_empty() {
                    return Err(err(line, "sap needs at least one name"));
                }
                for n in plain {
                    g.saps.push(n);
                }
            }
            "vnf" => {
                let (plain, kv) = split_opts(&tokens[1..]);
                let name = plain.first().ok_or_else(|| err(line, "vnf needs a name"))?;
                let ty = get_opt(&kv, "type")
                    .ok_or_else(|| err(line, "vnf needs type=..."))?
                    .to_string();
                let cpu = parse_f64(line, &kv, "cpu", 1.0)?;
                let mem = parse_u64(line, &kv, "mem", 256)?;
                let params = kv
                    .iter()
                    .filter(|(k, _)| !matches!(k.as_str(), "type" | "cpu" | "mem"))
                    .cloned()
                    .collect();
                g.vnfs.push(crate::sg::VnfReq {
                    name: name.clone(),
                    vnf_type: ty,
                    cpu,
                    mem_mb: mem,
                    params,
                    click_config: None,
                });
            }
            "chain" => {
                // chain NAME = a -> b -> c bw=X delay=Y
                let rest = text.strip_prefix("chain").unwrap().trim();
                let (name, spec) = rest
                    .split_once('=')
                    .ok_or_else(|| err(line, "chain needs 'chain NAME = a -> b ...'"))?;
                let name = name.trim().to_string();
                if name.is_empty() {
                    return Err(err(line, "chain needs a name"));
                }
                // Trailing options are whitespace-separated k=v... but we
                // already split on the first '=': re-scan the spec for
                // tokens containing '=' (options) vs the arrow path.
                let mut path_part = String::new();
                let mut kv = Vec::new();
                for tok in spec.split_whitespace() {
                    match tok.split_once('=') {
                        Some((k, v)) if !k.contains("->") => {
                            kv.push((k.to_string(), v.to_string()))
                        }
                        _ => {
                            path_part.push_str(tok);
                            path_part.push(' ');
                        }
                    }
                }
                let hops: Vec<String> = path_part
                    .split("->")
                    .map(|h| h.trim().to_string())
                    .filter(|h| !h.is_empty())
                    .collect();
                if hops.len() < 2 {
                    return Err(err(line, "chain needs at least two hops"));
                }
                let bw = parse_f64(line, &kv, "bw", 10.0)?;
                let delay = match get_opt(&kv, "delay") {
                    Some(v) => Some(parse_delay_us(line, v)?),
                    None => None,
                };
                let sla_delay = match get_opt(&kv, "sla_delay") {
                    Some(v) => Some(parse_delay_us(line, v)?),
                    None => None,
                };
                let sla_loss = match get_opt(&kv, "sla_loss") {
                    Some(v) => Some(
                        v.parse()
                            .map_err(|_| err(line, format!("bad sla_loss={v:?}")))?,
                    ),
                    None => None,
                };
                let sla = (sla_delay.is_some() || sla_loss.is_some()).then_some(crate::sg::Sla {
                    max_latency_us: sla_delay,
                    max_loss: sla_loss,
                });
                g.chains.push(crate::sg::Chain {
                    name,
                    hops,
                    bandwidth_mbps: bw,
                    max_delay_us: delay,
                    sla,
                });
            }
            other => return Err(err(line, format!("unknown directive {other:?}"))),
        }
    }
    g.validate().map_err(|m| err(0, m))?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::TopoNodeKind;

    const TOPO: &str = "\
# demo infrastructure
switch s0 s1
container c0 cpu=4 mem=2048
container c1 cpu=2
sap sap0 sap1
link s0 s1 bw=1000 delay=50us
link sap0 s0 delay=10us
link sap1 s1 delay=10us
link c0 s0 bw=500 delay=20us
link c1 s1
";

    const SG: &str = "\
sap sap0 sap1
vnf fw type=firewall cpu=1 mem=256
vnf lim type=rate_limiter cpu=0.5
chain c1 = sap0 -> fw -> lim -> sap1 bw=100 delay=5ms
chain back = sap1 -> sap0 bw=10
";

    #[test]
    fn topology_parses() {
        let t = parse_topology(TOPO).unwrap();
        assert_eq!(t.switches().count(), 2);
        assert_eq!(t.containers().count(), 2);
        assert_eq!(t.saps().count(), 2);
        assert_eq!(t.links.len(), 5);
        match t.node("c0").unwrap().kind {
            TopoNodeKind::Container { cpu, mem_mb } => {
                assert_eq!(cpu, 4.0);
                assert_eq!(mem_mb, 2048);
            }
            _ => panic!("c0 should be a container"),
        }
        let l = t.links.iter().find(|l| l.a == "s0" && l.b == "s1").unwrap();
        assert_eq!(l.delay_us, 50);
        // Defaults.
        let l = t.links.iter().find(|l| l.a == "c1").unwrap();
        assert_eq!(l.bandwidth_mbps, 1000.0);
        assert_eq!(l.delay_us, 50);
    }

    #[test]
    fn service_graph_parses() {
        let g = parse_service_graph(SG).unwrap();
        assert_eq!(g.saps.len(), 2);
        assert_eq!(g.vnfs.len(), 2);
        assert_eq!(g.chains.len(), 2);
        let c1 = &g.chains[0];
        assert_eq!(c1.hops, vec!["sap0", "fw", "lim", "sap1"]);
        assert_eq!(c1.bandwidth_mbps, 100.0);
        assert_eq!(c1.max_delay_us, Some(5_000));
        assert_eq!(g.chains[1].max_delay_us, None);
    }

    #[test]
    fn chain_sla_options_parse() {
        let g = parse_service_graph(
            "sap a b\nchain c = a -> b bw=10 sla_delay=2ms sla_loss=0.05\nchain d = a -> b\n",
        )
        .unwrap();
        let sla = g.chains[0].sla.expect("sla should be set");
        assert_eq!(sla.max_latency_us, Some(2_000));
        assert_eq!(sla.max_loss, Some(0.05));
        assert_eq!(g.chains[1].sla, None);
        let e = parse_service_graph("sap a b\nchain c = a -> b sla_loss=bogus\n").unwrap_err();
        assert!(e.message.contains("sla_loss"));
    }

    #[test]
    fn delay_units() {
        let t = parse_topology("switch a b\nlink a b delay=2ms\n").unwrap();
        assert_eq!(t.links[0].delay_us, 2_000);
        let t = parse_topology("switch a b\nlink a b delay=1s\n").unwrap();
        assert_eq!(t.links[0].delay_us, 1_000_000);
        let t = parse_topology("switch a b\nlink a b delay=7\n").unwrap();
        assert_eq!(t.links[0].delay_us, 7);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_topology("switch a\nbogus x\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
        let e = parse_topology("link a\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_service_graph("vnf x cpu=1\n").unwrap_err();
        assert!(e.message.contains("type"));
        let e = parse_service_graph("chain broken sap0 sap1\n").unwrap_err();
        assert!(e.message.contains("chain"));
    }

    #[test]
    fn semantic_validation_applies() {
        // Structurally fine but references an unknown node.
        let e = parse_topology("switch a\nlink a ghost\n").unwrap_err();
        assert!(e.message.contains("ghost"));
        let e = parse_service_graph("sap a b\nchain c = a -> nope -> b\n").unwrap_err();
        assert!(e.message.contains("nope"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let t = parse_topology("# nothing\n\n   # indented comment\nswitch a\n").unwrap();
        assert_eq!(t.switches().count(), 1);
    }
}
