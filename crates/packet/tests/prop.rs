//! Property tests: every wire format's encode/decode pair is an exact
//! inverse for arbitrary field values, and decoders never panic on
//! arbitrary byte soup.

use bytes::Bytes;
use escape_packet::*;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_payload(max: usize) -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..max).prop_map(Bytes::from)
}

proptest! {
    #[test]
    fn ethernet_roundtrip(dst in arb_mac(), src in arb_mac(), et in any::<u16>(), payload in arb_payload(256)) {
        let f = EthernetFrame::new(dst, src, EtherType::from_u16(et), payload);
        let g = EthernetFrame::decode(&f.encode()).unwrap();
        prop_assert_eq!(f, g);
    }

    #[test]
    fn ipv4_roundtrip(
        src in arb_ip(), dst in arb_ip(), proto in any::<u8>(),
        dscp in 0u8..64, ecn in 0u8..4, ident in any::<u16>(), df in any::<bool>(),
        ttl in 1u8..=255, payload in arb_payload(512),
    ) {
        let mut p = Ipv4Packet::new(src, dst, IpProtocol::from_u8(proto), payload);
        p.dscp = dscp;
        p.ecn = ecn;
        p.identification = ident;
        p.dont_fragment = df;
        p.ttl = ttl;
        let q = Ipv4Packet::decode(&p.encode()).unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn udp_roundtrip(src in arb_ip(), dst in arb_ip(), sp in any::<u16>(), dp in any::<u16>(), payload in arb_payload(512)) {
        let d = UdpDatagram::new(sp, dp, payload);
        let e = UdpDatagram::decode(&d.encode(src, dst), src, dst).unwrap();
        prop_assert_eq!(d, e);
    }

    #[test]
    fn tcp_roundtrip(
        src in arb_ip(), dst in arb_ip(), sp in any::<u16>(), dp in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(), fl in 0u8..64, win in any::<u16>(),
        payload in arb_payload(512),
    ) {
        let mut s = TcpSegment::new(sp, dp, seq, ack, fl, payload);
        s.window = win;
        let t = TcpSegment::decode(&s.encode(src, dst), src, dst).unwrap();
        prop_assert_eq!(s, t);
    }

    #[test]
    fn arp_roundtrip(smac in arb_mac(), sip in arb_ip(), tmac in arb_mac(), tip in arb_ip(), req in any::<bool>()) {
        let p = ArpPacket {
            operation: if req { ArpOperation::Request } else { ArpOperation::Reply },
            sender_mac: smac,
            sender_ip: sip,
            target_mac: tmac,
            target_ip: tip,
        };
        let q = ArpPacket::decode(&p.encode()).unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn icmp_echo_roundtrip(ident in any::<u16>(), seq in any::<u16>(), payload in arb_payload(128)) {
        let p = IcmpPacket::echo_request(ident, seq, payload);
        let q = IcmpPacket::decode(&p.encode()).unwrap();
        prop_assert_eq!(p, q);
    }

    // Decoders must reject or accept arbitrary bytes without panicking.
    #[test]
    fn decoders_never_panic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = EthernetFrame::decode(&data);
        let _ = Ipv4Packet::decode(&data);
        let _ = ArpPacket::decode(&data);
        let _ = IcmpPacket::decode(&data);
        let a = Ipv4Addr::new(1, 2, 3, 4);
        let _ = UdpDatagram::decode(&data, a, a);
        let _ = TcpSegment::decode(&data, a, a);
        let _ = FlowKey::extract(&data);
    }

    // A frame built by PacketBuilder always yields a complete UDP flow key.
    #[test]
    fn builder_frames_always_classify(
        smac in arb_mac(), dmac in arb_mac(), sip in arb_ip(), dip in arb_ip(),
        sp in any::<u16>(), dp in any::<u16>(),
    ) {
        let f = PacketBuilder::udp(smac, dmac, sip, dip, sp, dp, Bytes::from_static(b"k"));
        let key = FlowKey::extract(&f).unwrap();
        prop_assert_eq!(key.ip_src, Some(sip));
        prop_assert_eq!(key.ip_dst, Some(dip));
        prop_assert_eq!(key.tp_src, Some(sp));
        prop_assert_eq!(key.tp_dst, Some(dp));
    }
}
