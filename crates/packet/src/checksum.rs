//! RFC 1071 internet checksum, with the IPv4 pseudo-header variant used by
//! UDP and TCP.

use std::net::Ipv4Addr;

/// Computes the ones-complement sum of `data` folded to 16 bits, starting
/// from an initial partial `sum`. Does not take the final complement.
fn sum16(mut sum: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Folds a 32-bit partial sum into the final 16-bit checksum value.
fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Internet checksum of a byte slice (IPv4 header, ICMP).
pub fn checksum(data: &[u8]) -> u16 {
    fold(sum16(0, data))
}

/// Checksum over the IPv4 pseudo-header plus the transport segment, as used
/// by UDP and TCP. `proto` is the IP protocol number; `segment` is the
/// transport header + payload with the checksum field zeroed.
pub fn pseudo_header_checksum(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, segment: &[u8]) -> u16 {
    let mut sum = 0u32;
    sum = sum16(sum, &src.octets());
    sum = sum16(sum, &dst.octets());
    sum += u32::from(proto);
    sum += segment.len() as u32;
    fold(sum16(sum, segment))
}

/// Verifies that a buffer containing its own checksum sums to zero.
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example from RFC 1071 §3: {00 01, f2 03, f4 f5, f6 f7}
        // has sum 0x2ddf0 -> folded 0xddf2 -> checksum !0xddf2 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn empty_buffer_checksums_to_ffff() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verify_accepts_buffer_with_embedded_checksum() {
        let mut data = vec![
            0x45, 0x00, 0x00, 0x14, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        let c = checksum(&data);
        data[10] = (c >> 8) as u8;
        data[11] = (c & 0xff) as u8;
        assert!(verify(&data));
        // Flipping any bit must break it.
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_header_differs_from_plain() {
        let seg = [0u8; 8];
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        assert_ne!(pseudo_header_checksum(a, b, 17, &seg), checksum(&seg));
        // Swapping src/dst keeps the sum (addition is commutative) — a known
        // property of the internet checksum.
        assert_eq!(
            pseudo_header_checksum(a, b, 17, &seg),
            pseudo_header_checksum(b, a, 17, &seg)
        );
    }
}
