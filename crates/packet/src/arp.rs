//! ARP for IPv4 over Ethernet (RFC 826 subset).

use crate::mac::MacAddr;
use crate::ParseError;
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// Encoded length of an Ethernet/IPv4 ARP packet.
pub const PACKET_LEN: usize = 28;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOperation {
    Request,
    Reply,
}

impl ArpOperation {
    fn to_u16(self) -> u16 {
        match self {
            ArpOperation::Request => 1,
            ArpOperation::Reply => 2,
        }
    }
}

/// An ARP packet binding IPv4 addresses to MAC addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArpPacket {
    pub operation: ArpOperation,
    pub sender_mac: MacAddr,
    pub sender_ip: Ipv4Addr,
    pub target_mac: MacAddr,
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Builds a broadcast "who has `target_ip`" request.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            operation: ArpOperation::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Builds the matching reply to `req`, announcing `my_mac`.
    pub fn reply_to(req: &ArpPacket, my_mac: MacAddr) -> Self {
        ArpPacket {
            operation: ArpOperation::Reply,
            sender_mac: my_mac,
            sender_ip: req.target_ip,
            target_mac: req.sender_mac,
            target_ip: req.sender_ip,
        }
    }

    /// Decodes an ARP packet (Ethernet/IPv4 hardware/protocol types only).
    pub fn decode(data: &[u8]) -> Result<Self, ParseError> {
        if data.len() < PACKET_LEN {
            return Err(ParseError::Truncated {
                needed: PACKET_LEN,
                got: data.len(),
            });
        }
        let htype = u16::from_be_bytes([data[0], data[1]]);
        if htype != 1 {
            return Err(ParseError::UnsupportedField {
                field: "arp.htype",
                value: htype as u64,
            });
        }
        let ptype = u16::from_be_bytes([data[2], data[3]]);
        if ptype != 0x0800 {
            return Err(ParseError::UnsupportedField {
                field: "arp.ptype",
                value: ptype as u64,
            });
        }
        if data[4] != 6 || data[5] != 4 {
            return Err(ParseError::UnsupportedField {
                field: "arp.hlen/plen",
                value: (u64::from(data[4]) << 8) | u64::from(data[5]),
            });
        }
        let oper = u16::from_be_bytes([data[6], data[7]]);
        let operation = match oper {
            1 => ArpOperation::Request,
            2 => ArpOperation::Reply,
            v => {
                return Err(ParseError::UnsupportedField {
                    field: "arp.oper",
                    value: v as u64,
                })
            }
        };
        let mac = |o: usize| {
            let mut m = [0u8; 6];
            m.copy_from_slice(&data[o..o + 6]);
            MacAddr(m)
        };
        let ip = |o: usize| Ipv4Addr::new(data[o], data[o + 1], data[o + 2], data[o + 3]);
        Ok(ArpPacket {
            operation,
            sender_mac: mac(8),
            sender_ip: ip(14),
            target_mac: mac(18),
            target_ip: ip(24),
        })
    }

    /// Encodes to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(PACKET_LEN);
        buf.put_u16(1); // Ethernet
        buf.put_u16(0x0800); // IPv4
        buf.put_u8(6);
        buf.put_u8(4);
        buf.put_u16(self.operation.to_u16());
        buf.put_slice(&self.sender_mac.0);
        buf.put_slice(&self.sender_ip.octets());
        buf.put_slice(&self.target_mac.0);
        buf.put_slice(&self.target_ip.octets());
        buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_roundtrip() {
        let req = ArpPacket::request(
            MacAddr::from_id(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let wire = req.encode();
        assert_eq!(wire.len(), PACKET_LEN);
        let back = ArpPacket::decode(&wire).unwrap();
        assert_eq!(req, back);

        let rep = ArpPacket::reply_to(&back, MacAddr::from_id(2));
        assert_eq!(rep.operation, ArpOperation::Reply);
        assert_eq!(rep.sender_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(rep.target_mac, MacAddr::from_id(1));
        assert_eq!(rep.target_ip, Ipv4Addr::new(10, 0, 0, 1));
        let back2 = ArpPacket::decode(&rep.encode()).unwrap();
        assert_eq!(rep, back2);
    }

    #[test]
    fn decode_rejects_wrong_hardware_type() {
        let req = ArpPacket::request(MacAddr::ZERO, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED);
        let mut wire = req.encode().to_vec();
        wire[1] = 6; // IEEE 802 instead of Ethernet
        assert!(matches!(
            ArpPacket::decode(&wire),
            Err(ParseError::UnsupportedField {
                field: "arp.htype",
                ..
            })
        ));
    }

    #[test]
    fn decode_rejects_truncated() {
        assert!(matches!(
            ArpPacket::decode(&[0u8; 27]),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn decode_rejects_bad_operation() {
        let req = ArpPacket::request(MacAddr::ZERO, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED);
        let mut wire = req.encode().to_vec();
        wire[7] = 9;
        assert!(matches!(
            ArpPacket::decode(&wire),
            Err(ParseError::UnsupportedField {
                field: "arp.oper",
                ..
            })
        ));
    }
}
