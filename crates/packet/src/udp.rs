//! UDP (RFC 768).

use crate::checksum::pseudo_header_checksum;
use crate::ipv4::IpProtocol;
use crate::ParseError;
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A decoded UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    pub src_port: u16,
    pub dst_port: u16,
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Creates a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Bytes) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Decodes a datagram and validates its checksum against the
    /// IPv4 pseudo-header (`src`/`dst` from the enclosing IP packet).
    /// A zero checksum means "not computed" and is accepted per RFC 768.
    pub fn decode(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<Self, ParseError> {
        if data.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        let length = u16::from_be_bytes([data[4], data[5]]) as usize;
        if length < HEADER_LEN || length > data.len() {
            return Err(ParseError::BadLength {
                declared: length,
                actual: data.len(),
            });
        }
        let wire_sum = u16::from_be_bytes([data[6], data[7]]);
        if wire_sum != 0 {
            let ok = pseudo_header_checksum(src, dst, IpProtocol::Udp.to_u8(), &data[..length]);
            if ok != 0 {
                return Err(ParseError::BadChecksum {
                    expected: 0,
                    got: ok,
                });
            }
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            payload: Bytes::copy_from_slice(&data[HEADER_LEN..length]),
        })
    }

    /// Encodes with a checksum computed over the given pseudo-header.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Bytes {
        let length = HEADER_LEN + self.payload.len();
        let mut buf = BytesMut::with_capacity(length);
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(length as u16);
        buf.put_u16(0);
        buf.put_slice(&self.payload);
        let mut c = pseudo_header_checksum(src, dst, IpProtocol::Udp.to_u8(), &buf);
        if c == 0 {
            c = 0xffff; // RFC 768: transmit all-ones when the sum is zero
        }
        buf[6] = (c >> 8) as u8;
        buf[7] = (c & 0xff) as u8;
        buf.freeze()
    }

    /// Total encoded length.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 1);
    const B: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);

    #[test]
    fn encode_decode_roundtrip() {
        let d = UdpDatagram::new(1234, 80, Bytes::from_static(b"hello udp"));
        let wire = d.encode(A, B);
        assert_eq!(wire.len(), d.wire_len());
        let e = UdpDatagram::decode(&wire, A, B).unwrap();
        assert_eq!(d, e);
    }

    #[test]
    fn checksum_binds_addresses() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(b"x"));
        let wire = d.encode(A, B);
        // Same bytes with a different pseudo-header must fail.
        let wrong = Ipv4Addr::new(10, 9, 8, 7);
        assert!(matches!(
            UdpDatagram::decode(&wire, A, wrong),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let d = UdpDatagram::new(5, 6, Bytes::from_static(b"nochk"));
        let mut wire = d.encode(A, B).to_vec();
        wire[6] = 0;
        wire[7] = 0;
        let e = UdpDatagram::decode(&wire, A, B).unwrap();
        assert_eq!(e.payload, d.payload);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let d = UdpDatagram::new(0, 65535, Bytes::new());
        let e = UdpDatagram::decode(&d.encode(A, B), A, B).unwrap();
        assert_eq!(d, e);
    }

    #[test]
    fn bad_length_is_rejected() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(b"abc"));
        let mut wire = d.encode(A, B).to_vec();
        wire[5] = 200; // declared length > buffer
        assert!(matches!(
            UdpDatagram::decode(&wire, A, B),
            Err(ParseError::BadLength { .. })
        ));
    }

    #[test]
    fn truncated_is_rejected() {
        assert!(matches!(
            UdpDatagram::decode(&[0u8; 7], A, B),
            Err(ParseError::Truncated { .. })
        ));
    }
}
