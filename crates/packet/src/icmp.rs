//! ICMPv4 echo (the subset ping-style reachability tests need).

use crate::checksum;
use crate::ParseError;
use bytes::{BufMut, Bytes, BytesMut};

/// ICMP header length for echo messages.
pub const HEADER_LEN: usize = 8;

/// ICMP message types this stack generates and understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpType {
    EchoReply,
    EchoRequest,
    DestinationUnreachable { code: u8 },
    TimeExceeded,
}

impl IcmpType {
    fn to_wire(self) -> (u8, u8) {
        match self {
            IcmpType::EchoReply => (0, 0),
            IcmpType::EchoRequest => (8, 0),
            IcmpType::DestinationUnreachable { code } => (3, code),
            IcmpType::TimeExceeded => (11, 0),
        }
    }

    fn from_wire(ty: u8, code: u8) -> Result<Self, ParseError> {
        match ty {
            0 => Ok(IcmpType::EchoReply),
            8 => Ok(IcmpType::EchoRequest),
            3 => Ok(IcmpType::DestinationUnreachable { code }),
            11 => Ok(IcmpType::TimeExceeded),
            v => Err(ParseError::UnsupportedField {
                field: "icmp.type",
                value: v as u64,
            }),
        }
    }
}

/// A decoded ICMP message. `ident`/`seq` are meaningful for echo messages
/// and carried verbatim (zero) for the error types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpPacket {
    pub icmp_type: IcmpType,
    pub ident: u16,
    pub seq: u16,
    pub payload: Bytes,
}

impl IcmpPacket {
    /// Builds an echo request.
    pub fn echo_request(ident: u16, seq: u16, payload: Bytes) -> Self {
        IcmpPacket {
            icmp_type: IcmpType::EchoRequest,
            ident,
            seq,
            payload,
        }
    }

    /// Builds the reply matching a request.
    pub fn echo_reply(req: &IcmpPacket) -> Self {
        IcmpPacket {
            icmp_type: IcmpType::EchoReply,
            ident: req.ident,
            seq: req.seq,
            payload: req.payload.clone(),
        }
    }

    /// Decodes and validates the checksum.
    pub fn decode(data: &[u8]) -> Result<Self, ParseError> {
        if data.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        if checksum::checksum(data) != 0 {
            let got = u16::from_be_bytes([data[2], data[3]]);
            return Err(ParseError::BadChecksum { expected: 0, got });
        }
        Ok(IcmpPacket {
            icmp_type: IcmpType::from_wire(data[0], data[1])?,
            ident: u16::from_be_bytes([data[4], data[5]]),
            seq: u16::from_be_bytes([data[6], data[7]]),
            payload: Bytes::copy_from_slice(&data[HEADER_LEN..]),
        })
    }

    /// Encodes with a valid checksum.
    pub fn encode(&self) -> Bytes {
        let (ty, code) = self.icmp_type.to_wire();
        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.payload.len());
        buf.put_u8(ty);
        buf.put_u8(code);
        buf.put_u16(0);
        buf.put_u16(self.ident);
        buf.put_u16(self.seq);
        buf.put_slice(&self.payload);
        let c = checksum::checksum(&buf);
        buf[2] = (c >> 8) as u8;
        buf[3] = (c & 0xff) as u8;
        buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let req = IcmpPacket::echo_request(0x1234, 7, Bytes::from_static(b"ping-payload"));
        let wire = req.encode();
        let back = IcmpPacket::decode(&wire).unwrap();
        assert_eq!(req, back);
        let rep = IcmpPacket::echo_reply(&back);
        assert_eq!(rep.icmp_type, IcmpType::EchoReply);
        assert_eq!(rep.seq, 7);
        assert_eq!(IcmpPacket::decode(&rep.encode()).unwrap(), rep);
    }

    #[test]
    fn corrupted_fails_checksum() {
        let mut wire = IcmpPacket::echo_request(1, 1, Bytes::from_static(b"x"))
            .encode()
            .to_vec();
        wire[4] ^= 0x55;
        assert!(matches!(
            IcmpPacket::decode(&wire),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn error_types_roundtrip() {
        for t in [
            IcmpType::DestinationUnreachable { code: 3 },
            IcmpType::TimeExceeded,
        ] {
            let p = IcmpPacket {
                icmp_type: t,
                ident: 0,
                seq: 0,
                payload: Bytes::new(),
            };
            assert_eq!(IcmpPacket::decode(&p.encode()).unwrap().icmp_type, t);
        }
    }

    #[test]
    fn unknown_type_is_rejected() {
        let p = IcmpPacket::echo_request(0, 0, Bytes::new());
        let mut wire = p.encode().to_vec();
        wire[0] = 42;
        // fix checksum
        wire[2] = 0;
        wire[3] = 0;
        let c = checksum::checksum(&wire);
        wire[2] = (c >> 8) as u8;
        wire[3] = (c & 0xff) as u8;
        assert!(matches!(
            IcmpPacket::decode(&wire),
            Err(ParseError::UnsupportedField {
                field: "icmp.type",
                ..
            })
        ));
    }
}
