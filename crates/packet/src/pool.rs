//! Frame reuse for the emulation hot path.
//!
//! A paced traffic stream builds the *same* Ethernet frame every tick:
//! the layered encode ([`crate::PacketBuilder`]) costs four allocations
//! and three payload copies per packet. A [`FramePool`] caches the
//! encoded frame once per key and serves later emissions as [`Bytes`]
//! refcount clones — zero allocation, zero copy, byte-identical output.
//! The emulation's frames are immutable once on the wire (every mutation
//! site re-encodes into a fresh buffer), so sharing the backing storage
//! is safe by construction.

use bytes::Bytes;
use std::collections::HashMap;
use std::hash::Hash;

/// A keyed cache of prebuilt immutable frames.
///
/// The key captures everything the frame's bytes depend on (for a host
/// stream: the stream identity plus the resolved destination MAC), so a
/// stale frame can never be served — a changed input is a different key.
#[derive(Debug, Clone, Default)]
pub struct FramePool<K: Eq + Hash> {
    map: HashMap<K, Bytes>,
    /// Emissions served from the pool.
    pub hits: u64,
    /// Emissions that had to run the full layered encode.
    pub builds: u64,
}

impl<K: Eq + Hash> FramePool<K> {
    /// An empty pool.
    pub fn new() -> Self {
        FramePool {
            map: HashMap::new(),
            hits: 0,
            builds: 0,
        }
    }

    /// Returns the cached frame for `key`, building and caching it with
    /// `build` on first use. The returned [`Bytes`] shares storage with
    /// the pooled copy.
    pub fn get_or_build(&mut self, key: K, build: impl FnOnce() -> Bytes) -> Bytes {
        match self.map.get(&key) {
            Some(f) => {
                self.hits += 1;
                f.clone()
            }
            None => {
                self.builds += 1;
                let f = build();
                self.map.insert(key, f.clone());
                f
            }
        }
    }

    /// Drops one cached frame (e.g. the keyed input changed shape in a
    /// way the key does not capture).
    pub fn invalidate(&mut self, key: &K) {
        self.map.remove(key);
    }

    /// Drops every cached frame.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of distinct frames held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is pooled.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_get_is_a_hit_and_shares_storage() {
        let mut p: FramePool<u32> = FramePool::new();
        let a = p.get_or_build(1, || Bytes::from(vec![7u8; 64]));
        let b = p.get_or_build(1, || panic!("must not rebuild"));
        assert_eq!(a, b);
        assert_eq!((p.hits, p.builds), (1, 1));
        // Refcount clone: same backing storage, not a copy.
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn distinct_keys_build_distinct_frames() {
        let mut p: FramePool<(u32, u8)> = FramePool::new();
        let a = p.get_or_build((1, 0), || Bytes::from_static(b"aa"));
        let b = p.get_or_build((1, 1), || Bytes::from_static(b"bb"));
        assert_ne!(a, b);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn invalidate_forces_rebuild() {
        let mut p: FramePool<u32> = FramePool::new();
        p.get_or_build(1, || Bytes::from_static(b"old"));
        p.invalidate(&1);
        let f = p.get_or_build(1, || Bytes::from_static(b"new"));
        assert_eq!(&f[..], b"new");
        assert_eq!(p.builds, 2);
    }
}
