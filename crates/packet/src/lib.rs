//! # escape-packet
//!
//! Wire formats for the ESCAPE-RS emulated dataplane.
//!
//! This crate implements the packet formats that flow through the emulated
//! network: Ethernet II, ARP, IPv4, UDP, TCP and ICMPv4. Every format has a
//! typed, owned representation that can be decoded from and encoded to raw
//! bytes; encode/decode are exact inverses (checked by property tests).
//!
//! Design notes (following the smoltcp philosophy):
//! * simplicity over cleverness — owned structs with explicit fields, no
//!   macro/type tricks;
//! * strict parsing — malformed input yields a typed [`ParseError`], never a
//!   panic;
//! * checksums are always generated on encode and validated on decode.
//!
//! The high-level [`Packet`] type is what the emulator, the Click engine and
//! the OpenFlow switch exchange: raw bytes plus a lazily computed
//! [`FlowKey`] describing the header fields OpenFlow 1.0 can match on.

pub mod arp;
pub mod builder;
pub mod checksum;
pub mod ether;
pub mod flowkey;
pub mod icmp;
pub mod ipv4;
pub mod mac;
pub mod pool;
pub mod tcp;
pub mod udp;

pub use arp::{ArpOperation, ArpPacket};
pub use builder::PacketBuilder;
pub use ether::{EtherType, EthernetFrame};
pub use flowkey::FlowKey;
pub use icmp::{IcmpPacket, IcmpType};
pub use ipv4::{IpProtocol, Ipv4Packet};
pub use mac::MacAddr;
pub use pool::FramePool;
pub use tcp::TcpSegment;
pub use udp::UdpDatagram;

use bytes::Bytes;

/// Errors produced when decoding a wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the minimum length for this format.
    Truncated { needed: usize, got: usize },
    /// A checksum did not verify.
    BadChecksum { expected: u16, got: u16 },
    /// A field holds a value this implementation does not understand.
    UnsupportedField { field: &'static str, value: u64 },
    /// The declared length field disagrees with the buffer length.
    BadLength { declared: usize, actual: usize },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated { needed, got } => {
                write!(f, "truncated packet: need {needed} bytes, have {got}")
            }
            ParseError::BadChecksum { expected, got } => {
                write!(f, "bad checksum: expected {expected:#06x}, got {got:#06x}")
            }
            ParseError::UnsupportedField { field, value } => {
                write!(f, "unsupported value {value:#x} in field {field}")
            }
            ParseError::BadLength { declared, actual } => {
                write!(
                    f,
                    "bad length: header declares {declared}, buffer has {actual}"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// A packet travelling through the emulated network.
///
/// Carries the raw frame bytes plus bookkeeping the emulator needs: an id
/// unique within a run (for tracing) and the ingress timestamp in virtual
/// nanoseconds (set by the emulator when the packet first enters the
/// network, used by end-to-end latency experiments).
#[derive(Debug, Clone)]
pub struct Packet {
    /// Raw Ethernet frame bytes.
    pub data: Bytes,
    /// Unique id assigned at creation, for tracing through the network.
    pub id: u64,
    /// Virtual time (ns) when this packet entered the network; 0 if unset.
    pub born_ns: u64,
}

impl Packet {
    /// Wraps raw frame bytes into a packet with id 0 and no timestamp.
    pub fn from_bytes(data: Bytes) -> Self {
        Packet {
            data,
            id: 0,
            born_ns: 0,
        }
    }

    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Extracts the OpenFlow-style flow key from the frame headers.
    pub fn flow_key(&self) -> Result<FlowKey, ParseError> {
        FlowKey::extract(&self.data)
    }

    /// Decodes the Ethernet layer.
    pub fn ethernet(&self) -> Result<EthernetFrame, ParseError> {
        EthernetFrame::decode(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display_is_informative() {
        let e = ParseError::Truncated { needed: 14, got: 3 };
        assert!(e.to_string().contains("14"));
        let e = ParseError::BadChecksum {
            expected: 0xabcd,
            got: 0x1234,
        };
        assert!(e.to_string().contains("0xabcd"));
        let e = ParseError::UnsupportedField {
            field: "ihl",
            value: 3,
        };
        assert!(e.to_string().contains("ihl"));
        let e = ParseError::BadLength {
            declared: 100,
            actual: 20,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn packet_from_bytes_roundtrip() {
        let p = Packet::from_bytes(Bytes::from_static(b"hello"));
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.id, 0);
    }
}
