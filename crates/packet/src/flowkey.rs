//! The OpenFlow 1.0 12-tuple flow key extracted from a frame.
//!
//! This is the shared language between the switch's flow table, the POX
//! controller's match construction and Click's `Classifier`: one parse of a
//! frame yields every field OpenFlow 1.0 can match on.

use crate::ether::{EtherType, EthernetFrame};
use crate::ipv4::{IpProtocol, Ipv4Packet};
use crate::mac::MacAddr;
use crate::ParseError;
use std::net::Ipv4Addr;

/// Header fields of a frame, in OpenFlow 1.0 terms. Fields that do not
/// apply to the frame (e.g. ports of a non-TCP/UDP packet) are `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    pub eth_src: MacAddr,
    pub eth_dst: MacAddr,
    pub eth_type: u16,
    pub vlan_id: Option<u16>,
    pub ip_src: Option<Ipv4Addr>,
    pub ip_dst: Option<Ipv4Addr>,
    pub ip_proto: Option<u8>,
    pub ip_dscp: Option<u8>,
    pub tp_src: Option<u16>,
    pub tp_dst: Option<u16>,
}

impl FlowKey {
    /// Extracts the key from raw frame bytes. Transport fields are filled
    /// in on a best-effort basis: an unparseable layer simply leaves its
    /// fields `None` (matching how a hardware switch parses what it can),
    /// but an unparseable *Ethernet* layer is an error.
    pub fn extract(frame: &[u8]) -> Result<FlowKey, ParseError> {
        let eth = EthernetFrame::decode(frame)?;
        let mut key = FlowKey {
            eth_src: eth.src,
            eth_dst: eth.dst,
            eth_type: eth.ethertype.to_u16(),
            vlan_id: None,
            ip_src: None,
            ip_dst: None,
            ip_proto: None,
            ip_dscp: None,
            tp_src: None,
            tp_dst: None,
        };
        if eth.ethertype == EtherType::Ipv4 {
            if let Ok(ip) = Ipv4Packet::decode(&eth.payload) {
                key.ip_src = Some(ip.src);
                key.ip_dst = Some(ip.dst);
                key.ip_proto = Some(ip.protocol.to_u8());
                key.ip_dscp = Some(ip.dscp);
                match ip.protocol {
                    IpProtocol::Udp | IpProtocol::Tcp => {
                        // Ports sit in the same place for both protocols and
                        // matching must work even if the checksum context is
                        // unavailable, so read them positionally.
                        if ip.payload.len() >= 4 {
                            key.tp_src = Some(u16::from_be_bytes([ip.payload[0], ip.payload[1]]));
                            key.tp_dst = Some(u16::from_be_bytes([ip.payload[2], ip.payload[3]]));
                        }
                    }
                    IpProtocol::Icmp => {
                        // OpenFlow 1.0 maps ICMP type/code onto tp_src/tp_dst.
                        if ip.payload.len() >= 2 {
                            key.tp_src = Some(ip.payload[0] as u16);
                            key.tp_dst = Some(ip.payload[1] as u16);
                        }
                    }
                    IpProtocol::Other(_) => {}
                }
            }
        }
        Ok(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use bytes::Bytes;

    #[test]
    fn udp_key_has_all_fields() {
        let frame = PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            4000,
            53,
            Bytes::from_static(b"query"),
        );
        let key = FlowKey::extract(&frame).unwrap();
        assert_eq!(key.eth_src, MacAddr::from_id(1));
        assert_eq!(key.eth_type, 0x0800);
        assert_eq!(key.ip_src, Some(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(key.ip_proto, Some(17));
        assert_eq!(key.tp_src, Some(4000));
        assert_eq!(key.tp_dst, Some(53));
    }

    #[test]
    fn arp_key_has_no_ip_fields() {
        let frame = PacketBuilder::arp_request(
            MacAddr::from_id(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let key = FlowKey::extract(&frame).unwrap();
        assert_eq!(key.eth_type, 0x0806);
        assert_eq!(key.ip_src, None);
        assert_eq!(key.tp_src, None);
    }

    #[test]
    fn icmp_type_maps_to_tp_src() {
        let frame = PacketBuilder::icmp_echo_request(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            1,
        );
        let key = FlowKey::extract(&frame).unwrap();
        assert_eq!(key.ip_proto, Some(1));
        assert_eq!(key.tp_src, Some(8)); // echo request type
        assert_eq!(key.tp_dst, Some(0));
    }

    #[test]
    fn truncated_ethernet_is_an_error() {
        assert!(FlowKey::extract(&[1, 2, 3]).is_err());
    }

    #[test]
    fn garbage_ip_payload_leaves_fields_none() {
        // Valid Ethernet carrying an IPv4 ethertype but junk payload.
        let eth = EthernetFrame::new(
            MacAddr::from_id(9),
            MacAddr::from_id(8),
            EtherType::Ipv4,
            Bytes::from_static(&[0xde, 0xad]),
        );
        let key = FlowKey::extract(&eth.encode()).unwrap();
        assert_eq!(key.eth_type, 0x0800);
        assert_eq!(key.ip_src, None);
    }
}
