//! IPv4 (RFC 791 subset: no options, no fragmentation reassembly — the
//! emulated links never fragment because the MTU is uniform).

use crate::checksum;
use crate::ParseError;
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// Length of the option-less IPv4 header this stack emits.
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers this stack understands (others are preserved).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    Icmp,
    Tcp,
    Udp,
    Other(u8),
}

impl IpProtocol {
    /// Numeric protocol value.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }

    /// Decodes a protocol number.
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

/// A decoded IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    pub dscp: u8,
    pub ecn: u8,
    pub identification: u16,
    pub dont_fragment: bool,
    pub ttl: u8,
    pub protocol: IpProtocol,
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub payload: Bytes,
}

impl Ipv4Packet {
    /// Builds a packet with sensible defaults (TTL 64, DF set).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload: Bytes) -> Self {
        Ipv4Packet {
            dscp: 0,
            ecn: 0,
            identification: 0,
            dont_fragment: true,
            ttl: 64,
            protocol,
            src,
            dst,
            payload,
        }
    }

    /// Decodes an IPv4 packet, validating the header checksum.
    pub fn decode(data: &[u8]) -> Result<Self, ParseError> {
        if data.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(ParseError::UnsupportedField {
                field: "ip.version",
                value: version as u64,
            });
        }
        let ihl = (data[0] & 0x0f) as usize * 4;
        if ihl < HEADER_LEN {
            return Err(ParseError::UnsupportedField {
                field: "ip.ihl",
                value: ihl as u64,
            });
        }
        if data.len() < ihl {
            return Err(ParseError::Truncated {
                needed: ihl,
                got: data.len(),
            });
        }
        if !checksum::verify(&data[..ihl]) {
            let got = u16::from_be_bytes([data[10], data[11]]);
            let mut hdr = data[..ihl].to_vec();
            hdr[10] = 0;
            hdr[11] = 0;
            return Err(ParseError::BadChecksum {
                expected: checksum::checksum(&hdr),
                got,
            });
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total_len < ihl || total_len > data.len() {
            return Err(ParseError::BadLength {
                declared: total_len,
                actual: data.len(),
            });
        }
        let flags = data[6] >> 5;
        let frag_off = (u16::from_be_bytes([data[6], data[7]]) & 0x1fff) as usize;
        if flags & 0b001 != 0 || frag_off != 0 {
            // More-fragments set or non-zero offset: we don't reassemble.
            return Err(ParseError::UnsupportedField {
                field: "ip.fragment",
                value: frag_off as u64,
            });
        }
        Ok(Ipv4Packet {
            dscp: data[1] >> 2,
            ecn: data[1] & 0x03,
            identification: u16::from_be_bytes([data[4], data[5]]),
            dont_fragment: flags & 0b010 != 0,
            ttl: data[8],
            protocol: IpProtocol::from_u8(data[9]),
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
            payload: Bytes::copy_from_slice(&data[ihl..total_len]),
        })
    }

    /// Encodes to wire bytes with a correct header checksum.
    pub fn encode(&self) -> Bytes {
        let total_len = HEADER_LEN + self.payload.len();
        let mut buf = BytesMut::with_capacity(total_len);
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8((self.dscp << 2) | (self.ecn & 0x03));
        buf.put_u16(total_len as u16);
        buf.put_u16(self.identification);
        buf.put_u16(if self.dont_fragment { 0x4000 } else { 0 });
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol.to_u8());
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
        let c = checksum::checksum(&buf);
        buf[10] = (c >> 8) as u8;
        buf[11] = (c & 0xff) as u8;
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Returns a copy with TTL decremented, or `None` when the TTL expires.
    pub fn decrement_ttl(&self) -> Option<Ipv4Packet> {
        if self.ttl <= 1 {
            None
        } else {
            let mut p = self.clone();
            p.ttl -= 1;
            Some(p)
        }
    }

    /// Total encoded length.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Packet {
        Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Udp,
            Bytes::from_static(b"data!"),
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = sample();
        let wire = p.encode();
        assert_eq!(wire.len(), p.wire_len());
        let q = Ipv4Packet::decode(&wire).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn checksum_is_validated() {
        let mut wire = sample().encode().to_vec();
        wire[8] = wire[8].wrapping_add(1); // corrupt TTL without fixing checksum
        assert!(matches!(
            Ipv4Packet::decode(&wire),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn total_length_is_honoured_with_trailing_padding() {
        // Ethernet may pad short frames; the decoder must trim to total_len.
        let p = sample();
        let mut wire = p.encode().to_vec();
        wire.extend_from_slice(&[0u8; 10]); // padding
        let q = Ipv4Packet::decode(&wire).unwrap();
        assert_eq!(q.payload, p.payload);
    }

    #[test]
    fn rejects_fragments() {
        let p = sample();
        let mut wire = p.encode().to_vec();
        wire[6] = 0x20; // more fragments
                        // fix checksum
        wire[10] = 0;
        wire[11] = 0;
        let c = checksum::checksum(&wire[..20]);
        wire[10] = (c >> 8) as u8;
        wire[11] = (c & 0xff) as u8;
        assert!(matches!(
            Ipv4Packet::decode(&wire),
            Err(ParseError::UnsupportedField {
                field: "ip.fragment",
                ..
            })
        ));
    }

    #[test]
    fn rejects_version_6() {
        let mut wire = sample().encode().to_vec();
        wire[0] = 0x65;
        assert!(matches!(
            Ipv4Packet::decode(&wire),
            Err(ParseError::UnsupportedField {
                field: "ip.version",
                ..
            })
        ));
    }

    #[test]
    fn ttl_decrement_expires_at_one() {
        let mut p = sample();
        p.ttl = 2;
        let q = p.decrement_ttl().unwrap();
        assert_eq!(q.ttl, 1);
        assert!(q.decrement_ttl().is_none());
    }

    #[test]
    fn declared_length_longer_than_buffer_is_rejected() {
        let p = sample();
        let wire = p.encode();
        let truncated = &wire[..wire.len() - 2];
        // header checksum still valid but total_len now exceeds buffer
        assert!(matches!(
            Ipv4Packet::decode(truncated),
            Err(ParseError::BadLength { .. })
        ));
    }
}
