//! Ethernet II framing.

use crate::mac::MacAddr;
use crate::ParseError;
use bytes::{BufMut, Bytes, BytesMut};

/// Ethernet II header length.
pub const HEADER_LEN: usize = 14;

/// EtherType values this stack understands (unknown values are preserved).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    Ipv4,
    Arp,
    Vlan,
    /// Any other value, carried verbatim.
    Other(u16),
}

impl EtherType {
    /// Numeric value on the wire.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Vlan => 0x8100,
            EtherType::Other(v) => v,
        }
    }

    /// Decodes a wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x8100 => EtherType::Vlan,
            other => EtherType::Other(other),
        }
    }
}

/// A decoded Ethernet II frame: header fields plus opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    pub dst: MacAddr,
    pub src: MacAddr,
    pub ethertype: EtherType,
    pub payload: Bytes,
}

impl EthernetFrame {
    /// Creates a frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Bytes) -> Self {
        EthernetFrame {
            dst,
            src,
            ethertype,
            payload,
        }
    }

    /// Decodes a frame from raw bytes.
    pub fn decode(data: &[u8]) -> Result<Self, ParseError> {
        if data.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        let mut src = [0u8; 6];
        src.copy_from_slice(&data[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([data[12], data[13]]));
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: Bytes::copy_from_slice(&data[HEADER_LEN..]),
        })
    }

    /// Encodes the frame to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.payload.len());
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype.to_u16());
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Total encoded length.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            EtherType::Ipv4,
            Bytes::from_static(b"payload-bytes"),
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = sample();
        let wire = f.encode();
        assert_eq!(wire.len(), f.wire_len());
        let g = EthernetFrame::decode(&wire).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn decode_rejects_short_frame() {
        let err = EthernetFrame::decode(&[0u8; 13]).unwrap_err();
        assert_eq!(
            err,
            ParseError::Truncated {
                needed: 14,
                got: 13
            }
        );
    }

    #[test]
    fn empty_payload_is_allowed() {
        let f = EthernetFrame::new(MacAddr::ZERO, MacAddr::ZERO, EtherType::Arp, Bytes::new());
        let g = EthernetFrame::decode(&f.encode()).unwrap();
        assert_eq!(g.payload.len(), 0);
        assert_eq!(g.ethertype, EtherType::Arp);
    }

    #[test]
    fn ethertype_mapping_covers_known_values() {
        for (t, v) in [
            (EtherType::Ipv4, 0x0800u16),
            (EtherType::Arp, 0x0806),
            (EtherType::Vlan, 0x8100),
            (EtherType::Other(0x88cc), 0x88cc),
        ] {
            assert_eq!(t.to_u16(), v);
            assert_eq!(EtherType::from_u16(v), t);
        }
    }
}
