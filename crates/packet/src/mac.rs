//! IEEE 802 MAC addresses.

use std::fmt;
use std::str::FromStr;

/// A 48-bit Ethernet MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as "unset".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds an address from raw octets.
    pub const fn new(o: [u8; 6]) -> Self {
        MacAddr(o)
    }

    /// Deterministically derives a locally administered unicast address from
    /// an integer id. Used by the emulator to assign addresses to emulated
    /// interfaces: ids up to 2^40 never collide.
    pub fn from_id(id: u64) -> Self {
        // 0x02 = locally administered, unicast.
        MacAddr([
            0x02,
            ((id >> 32) & 0xff) as u8,
            ((id >> 24) & 0xff) as u8,
            ((id >> 16) & 0xff) as u8,
            ((id >> 8) & 0xff) as u8,
            (id & 0xff) as u8,
        ])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the group bit (I/G) is set and the address is not broadcast.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0 && !self.is_broadcast()
    }

    /// True for ordinary unicast addresses.
    pub fn is_unicast(&self) -> bool {
        self.0[0] & 0x01 == 0
    }

    /// Raw octets.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    // Delegates to Display; keeps emulator traces compact.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing a MAC address from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacParseError(pub String);

impl fmt::Display for MacParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address: {}", self.0)
    }
}

impl std::error::Error for MacParseError {}

impl FromStr for MacAddr {
    type Err = MacParseError;

    /// Parses `aa:bb:cc:dd:ee:ff` (also accepts `-` separators).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split([':', '-']).collect();
        if parts.len() != 6 {
            return Err(MacParseError(s.to_string()));
        }
        let mut o = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            o[i] = u8::from_str_radix(p, 16).map_err(|_| MacParseError(s.to_string()))?;
        }
        Ok(MacAddr(o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let m = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
        assert_eq!("de:ad:be:ef:00:01".parse::<MacAddr>().unwrap(), m);
        assert_eq!("de-ad-be-ef-00-01".parse::<MacAddr>().unwrap(), m);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:zz".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:01:02".parse::<MacAddr>().is_err());
    }

    #[test]
    fn broadcast_and_multicast_flags() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::BROADCAST.is_unicast());
        let mcast = MacAddr::new([0x01, 0x00, 0x5e, 0, 0, 1]);
        assert!(mcast.is_multicast());
        assert!(!mcast.is_unicast());
        let ucast = MacAddr::from_id(7);
        assert!(ucast.is_unicast());
        assert!(!ucast.is_multicast());
    }

    #[test]
    fn from_id_is_injective_for_small_ids() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..10_000u64 {
            assert!(seen.insert(MacAddr::from_id(id)), "collision at {id}");
        }
    }

    #[test]
    fn from_id_is_locally_administered_unicast() {
        for id in [0u64, 1, 255, 65_536, u32::MAX as u64] {
            let m = MacAddr::from_id(id);
            assert_eq!(m.0[0], 0x02);
            assert!(m.is_unicast());
        }
    }
}
