//! Convenience constructors for fully formed frames.
//!
//! Workload generators, tests and examples use these to mint complete
//! Ethernet frames in one call.

use crate::arp::ArpPacket;
use crate::ether::{EtherType, EthernetFrame};
use crate::icmp::IcmpPacket;
use crate::ipv4::{IpProtocol, Ipv4Packet};
use crate::mac::MacAddr;
use crate::tcp::{flags, TcpSegment};
use crate::udp::UdpDatagram;
use bytes::Bytes;
use std::net::Ipv4Addr;

/// Builders producing raw frame bytes.
pub struct PacketBuilder;

impl PacketBuilder {
    /// A UDP datagram in an IPv4 packet in an Ethernet frame.
    #[allow(clippy::too_many_arguments)]
    pub fn udp(
        eth_src: MacAddr,
        eth_dst: MacAddr,
        ip_src: Ipv4Addr,
        ip_dst: Ipv4Addr,
        sport: u16,
        dport: u16,
        payload: Bytes,
    ) -> Bytes {
        let udp = UdpDatagram::new(sport, dport, payload).encode(ip_src, ip_dst);
        let ip = Ipv4Packet::new(ip_src, ip_dst, IpProtocol::Udp, udp).encode();
        EthernetFrame::new(eth_dst, eth_src, EtherType::Ipv4, ip).encode()
    }

    /// A TCP segment in an IPv4 packet in an Ethernet frame.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp(
        eth_src: MacAddr,
        eth_dst: MacAddr,
        ip_src: Ipv4Addr,
        ip_dst: Ipv4Addr,
        sport: u16,
        dport: u16,
        tcp_flags: u8,
        payload: Bytes,
    ) -> Bytes {
        let seg = TcpSegment::new(sport, dport, 0, 0, tcp_flags, payload).encode(ip_src, ip_dst);
        let ip = Ipv4Packet::new(ip_src, ip_dst, IpProtocol::Tcp, seg).encode();
        EthernetFrame::new(eth_dst, eth_src, EtherType::Ipv4, ip).encode()
    }

    /// A TCP SYN, the first packet of a new connection.
    pub fn tcp_syn(
        eth_src: MacAddr,
        eth_dst: MacAddr,
        ip_src: Ipv4Addr,
        ip_dst: Ipv4Addr,
        sport: u16,
        dport: u16,
    ) -> Bytes {
        Self::tcp(
            eth_src,
            eth_dst,
            ip_src,
            ip_dst,
            sport,
            dport,
            flags::SYN,
            Bytes::new(),
        )
    }

    /// A broadcast ARP request.
    pub fn arp_request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Bytes {
        let arp = ArpPacket::request(sender_mac, sender_ip, target_ip).encode();
        EthernetFrame::new(MacAddr::BROADCAST, sender_mac, EtherType::Arp, arp).encode()
    }

    /// A unicast ARP reply.
    pub fn arp_reply(req_frame: &[u8], my_mac: MacAddr) -> Option<Bytes> {
        let eth = EthernetFrame::decode(req_frame).ok()?;
        let req = ArpPacket::decode(&eth.payload).ok()?;
        let rep = ArpPacket::reply_to(&req, my_mac).encode();
        Some(EthernetFrame::new(req.sender_mac, my_mac, EtherType::Arp, rep).encode())
    }

    /// An ICMP echo request frame.
    pub fn icmp_echo_request(
        eth_src: MacAddr,
        eth_dst: MacAddr,
        ip_src: Ipv4Addr,
        ip_dst: Ipv4Addr,
        ident: u16,
        seq: u16,
    ) -> Bytes {
        let icmp =
            IcmpPacket::echo_request(ident, seq, Bytes::from_static(b"escape-ping")).encode();
        let ip = Ipv4Packet::new(ip_src, ip_dst, IpProtocol::Icmp, icmp).encode();
        EthernetFrame::new(eth_dst, eth_src, EtherType::Ipv4, ip).encode()
    }

    /// A UDP frame padded with zeros so the whole Ethernet frame is exactly
    /// `frame_len` bytes (used by the throughput benches for 64/512/1500 B
    /// packet-size sweeps). Panics if `frame_len` is below the minimum of
    /// 14 + 20 + 8 = 42 bytes.
    pub fn udp_with_len(
        eth_src: MacAddr,
        eth_dst: MacAddr,
        ip_src: Ipv4Addr,
        ip_dst: Ipv4Addr,
        sport: u16,
        dport: u16,
        frame_len: usize,
    ) -> Bytes {
        const OVERHEAD: usize = 14 + 20 + 8;
        assert!(
            frame_len >= OVERHEAD,
            "frame_len {frame_len} below minimum {OVERHEAD}"
        );
        let payload = Bytes::from(vec![0u8; frame_len - OVERHEAD]);
        Self::udp(eth_src, eth_dst, ip_src, ip_dst, sport, dport, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 1]);
    const B_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 2]);
    const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn udp_frame_parses_back_to_all_layers() {
        let frame = PacketBuilder::udp(
            A_MAC,
            B_MAC,
            A_IP,
            B_IP,
            1111,
            2222,
            Bytes::from_static(b"xyz"),
        );
        let eth = EthernetFrame::decode(&frame).unwrap();
        assert_eq!(eth.src, A_MAC);
        assert_eq!(eth.dst, B_MAC);
        let ip = Ipv4Packet::decode(&eth.payload).unwrap();
        assert_eq!(ip.protocol, IpProtocol::Udp);
        let udp = UdpDatagram::decode(&ip.payload, ip.src, ip.dst).unwrap();
        assert_eq!(udp.dst_port, 2222);
        assert_eq!(&udp.payload[..], b"xyz");
    }

    #[test]
    fn tcp_syn_is_a_syn() {
        let frame = PacketBuilder::tcp_syn(A_MAC, B_MAC, A_IP, B_IP, 5000, 80);
        let eth = EthernetFrame::decode(&frame).unwrap();
        let ip = Ipv4Packet::decode(&eth.payload).unwrap();
        let seg = TcpSegment::decode(&ip.payload, ip.src, ip.dst).unwrap();
        assert!(seg.is_syn());
    }

    #[test]
    fn arp_reply_answers_request() {
        let req = PacketBuilder::arp_request(A_MAC, A_IP, B_IP);
        let rep = PacketBuilder::arp_reply(&req, B_MAC).unwrap();
        let eth = EthernetFrame::decode(&rep).unwrap();
        assert_eq!(eth.dst, A_MAC); // unicast back to the asker
        let arp = ArpPacket::decode(&eth.payload).unwrap();
        assert_eq!(arp.sender_mac, B_MAC);
        assert_eq!(arp.sender_ip, B_IP);
    }

    #[test]
    fn sized_frames_are_exact() {
        for len in [64usize, 128, 512, 1500] {
            let f = PacketBuilder::udp_with_len(A_MAC, B_MAC, A_IP, B_IP, 1, 2, len);
            assert_eq!(f.len(), len);
            // And still fully parseable:
            let eth = EthernetFrame::decode(&f).unwrap();
            let ip = Ipv4Packet::decode(&eth.payload).unwrap();
            UdpDatagram::decode(&ip.payload, ip.src, ip.dst).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "below minimum")]
    fn sized_frame_below_minimum_panics() {
        PacketBuilder::udp_with_len(A_MAC, B_MAC, A_IP, B_IP, 1, 2, 30);
    }
}
