//! TCP segment format (RFC 793 header; no connection state machine — the
//! emulator's traffic generators emit pre-formed segments, and VNFs such as
//! the firewall or DPI only inspect headers).

use crate::checksum::pseudo_header_checksum;
use crate::ipv4::IpProtocol;
use crate::ParseError;
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// Option-less TCP header length.
pub const HEADER_LEN: usize = 20;

/// TCP flag bits.
pub mod flags {
    pub const FIN: u8 = 0x01;
    pub const SYN: u8 = 0x02;
    pub const RST: u8 = 0x04;
    pub const PSH: u8 = 0x08;
    pub const ACK: u8 = 0x10;
    pub const URG: u8 = 0x20;
}

/// A decoded TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: u8,
    pub window: u16,
    pub payload: Bytes,
}

impl TcpSegment {
    /// Creates a segment with the given flags.
    pub fn new(
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: u8,
        payload: Bytes,
    ) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 65535,
            payload,
        }
    }

    /// True if the SYN flag is set.
    pub fn is_syn(&self) -> bool {
        self.flags & flags::SYN != 0
    }

    /// True if the FIN flag is set.
    pub fn is_fin(&self) -> bool {
        self.flags & flags::FIN != 0
    }

    /// True if the RST flag is set.
    pub fn is_rst(&self) -> bool {
        self.flags & flags::RST != 0
    }

    /// Decodes and validates the checksum against the IPv4 pseudo-header.
    pub fn decode(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<Self, ParseError> {
        if data.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        let data_off = ((data[12] >> 4) as usize) * 4;
        if data_off < HEADER_LEN {
            return Err(ParseError::UnsupportedField {
                field: "tcp.doff",
                value: data_off as u64,
            });
        }
        if data.len() < data_off {
            return Err(ParseError::Truncated {
                needed: data_off,
                got: data.len(),
            });
        }
        let sum = pseudo_header_checksum(src, dst, IpProtocol::Tcp.to_u8(), data);
        if sum != 0 {
            return Err(ParseError::BadChecksum {
                expected: 0,
                got: sum,
            });
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: data[13] & 0x3f,
            window: u16::from_be_bytes([data[14], data[15]]),
            payload: Bytes::copy_from_slice(&data[data_off..]),
        })
    }

    /// Encodes (without options) with a valid checksum.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.payload.len());
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq);
        buf.put_u32(self.ack);
        buf.put_u8((HEADER_LEN as u8 / 4) << 4);
        buf.put_u8(self.flags & 0x3f);
        buf.put_u16(self.window);
        buf.put_u16(0); // checksum
        buf.put_u16(0); // urgent pointer (unused)
        buf.put_slice(&self.payload);
        let c = pseudo_header_checksum(src, dst, IpProtocol::Tcp.to_u8(), &buf);
        buf[16] = (c >> 8) as u8;
        buf[17] = (c & 0xff) as u8;
        buf.freeze()
    }

    /// Total encoded length.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 2);

    #[test]
    fn encode_decode_roundtrip() {
        let s = TcpSegment::new(
            443,
            51000,
            1000,
            2000,
            flags::ACK | flags::PSH,
            Bytes::from_static(b"tls bytes"),
        );
        let wire = s.encode(A, B);
        assert_eq!(wire.len(), s.wire_len());
        let t = TcpSegment::decode(&wire, A, B).unwrap();
        assert_eq!(s, t);
    }

    #[test]
    fn flag_helpers() {
        let syn = TcpSegment::new(1, 2, 0, 0, flags::SYN, Bytes::new());
        assert!(syn.is_syn() && !syn.is_fin() && !syn.is_rst());
        let fin = TcpSegment::new(1, 2, 0, 0, flags::FIN | flags::ACK, Bytes::new());
        assert!(fin.is_fin() && !fin.is_syn());
        let rst = TcpSegment::new(1, 2, 0, 0, flags::RST, Bytes::new());
        assert!(rst.is_rst());
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let s = TcpSegment::new(80, 1234, 7, 9, flags::ACK, Bytes::from_static(b"response"));
        let mut wire = s.encode(A, B).to_vec();
        let last = wire.len() - 1;
        wire[last] ^= 0xff;
        assert!(matches!(
            TcpSegment::decode(&wire, A, B),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn segments_with_options_are_decoded() {
        // Hand-build a header with doff=6 (one 4-byte option of NOPs).
        let s = TcpSegment::new(1, 2, 3, 4, flags::SYN, Bytes::new());
        let mut wire = s.encode(A, B).to_vec();
        wire[12] = 6 << 4;
        wire.extend_from_slice(&[1, 1, 1, 1]); // NOP options
                                               // Re-checksum.
        wire[16] = 0;
        wire[17] = 0;
        let c = pseudo_header_checksum(A, B, IpProtocol::Tcp.to_u8(), &wire);
        wire[16] = (c >> 8) as u8;
        wire[17] = (c & 0xff) as u8;
        let t = TcpSegment::decode(&wire, A, B).unwrap();
        assert!(t.is_syn());
        assert!(t.payload.is_empty());
    }

    #[test]
    fn truncated_is_rejected() {
        assert!(matches!(
            TcpSegment::decode(&[0u8; 19], A, B),
            Err(ParseError::Truncated { .. })
        ));
    }
}
