//! Cgroup-like CPU accounting for VNF containers.
//!
//! The paper: *"Mininet is extended by the notion of VNFs that can be
//! started as processes with configurable isolation models (based on
//! cgroups in Linux)."* This module models that: each VNF container owns a
//! [`CpuModel`]; every packet a VNF processes costs some CPU nanoseconds;
//! the isolation mode decides how co-located VNFs contend.

use crate::time::Time;

/// How a VNF process is isolated from its neighbours on the same container,
/// mirroring the cgroup cpu controller's knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IsolationMode {
    /// No isolation: all work serializes on the container's single CPU
    /// timeline (a noisy neighbour delays everyone).
    None,
    /// cpu.shares-style proportional share: the process is charged
    /// `cost / weight_fraction`, emulating a fair scheduler giving it
    /// `weight / total_weight` of the CPU. The fraction is fixed at
    /// configuration time (we do not re-balance dynamically).
    CpuShare {
        /// This process's weight.
        weight: u32,
        /// Sum of weights of all processes in the container.
        total: u32,
    },
    /// cpu.cfs_quota-style hard cap: the process may consume at most
    /// `quota_ns` of CPU per `period_ns`; work beyond the quota waits for
    /// the next period.
    CpuQuota { quota_ns: u64, period_ns: u64 },
}

impl IsolationMode {
    fn validate(&self) {
        match *self {
            IsolationMode::None => {}
            IsolationMode::CpuShare { weight, total } => {
                assert!(
                    weight > 0 && total >= weight,
                    "invalid cpu share {weight}/{total}"
                );
            }
            IsolationMode::CpuQuota {
                quota_ns,
                period_ns,
            } => {
                assert!(
                    quota_ns > 0 && period_ns >= quota_ns,
                    "invalid quota {quota_ns}/{period_ns}"
                );
            }
        }
    }
}

/// Per-process accounting state.
#[derive(Debug, Clone)]
struct ProcState {
    isolation: IsolationMode,
    /// For `CpuQuota`: CPU consumed in the current period.
    used_in_period: u64,
    /// For `CpuQuota`: start of the current period.
    period_start: Time,
    /// For isolated (`CpuShare`/`CpuQuota`) processes: their private
    /// scheduling-domain timeline.
    own_busy_until: Time,
    /// Total CPU ns charged to this process.
    pub total_used: u64,
}

/// The CPU of one VNF container, modelling cgroup semantics:
///
/// * `IsolationMode::None` processes share one FIFO timeline — a noisy
///   neighbour's backlog delays everyone (no isolation);
/// * `CpuShare`/`CpuQuota` processes run in their **own scheduling
///   domain**: their work is inflated (share) or deferred (quota) on a
///   private timeline, and they neither suffer from nor inflict
///   head-of-line blocking on the shared lane — the protection cgroups
///   buy.
///
/// `run()` returns the virtual completion time of the work item — callers
/// schedule their "processing done" events at that instant.
#[derive(Debug, Clone)]
pub struct CpuModel {
    busy_until: Time,
    procs: Vec<ProcState>,
    /// Total CPU ns consumed on this container.
    pub total_busy: u64,
}

/// Handle to a process registered on a [`CpuModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcId(pub usize);

impl CpuModel {
    /// A fresh idle CPU.
    pub fn new() -> Self {
        CpuModel {
            busy_until: Time::ZERO,
            procs: Vec::new(),
            total_busy: 0,
        }
    }

    /// Registers a process with the given isolation mode.
    pub fn add_process(&mut self, isolation: IsolationMode) -> ProcId {
        isolation.validate();
        self.procs.push(ProcState {
            isolation,
            used_in_period: 0,
            period_start: Time::ZERO,
            own_busy_until: Time::ZERO,
            total_used: 0,
        });
        ProcId(self.procs.len() - 1)
    }

    /// Charges `cost_ns` of CPU to `proc` starting no earlier than `now`,
    /// and returns the completion time.
    pub fn run(&mut self, proc_: ProcId, now: Time, cost_ns: u64) -> Time {
        let p = &mut self.procs[proc_.0];
        // Inflate cost per the isolation mode.
        let (start_floor, effective_cost) = match p.isolation {
            IsolationMode::None => (now, cost_ns),
            IsolationMode::CpuShare { weight, total } => {
                // Proportional slowdown: with w/t of the CPU, cost takes t/w
                // longer in wall-clock.
                let inflated = (cost_ns as u128 * total as u128 / weight as u128) as u64;
                (now, inflated)
            }
            IsolationMode::CpuQuota {
                quota_ns,
                period_ns,
            } => {
                // Advance to the current period.
                let mut start = now;
                let elapsed = now.since(p.period_start);
                if elapsed >= period_ns {
                    // Start a fresh period aligned to now.
                    p.period_start = now;
                    p.used_in_period = 0;
                }
                // If the quota is exhausted, the work waits for the next
                // period boundary.
                if p.used_in_period + cost_ns > quota_ns {
                    let next_period = p.period_start.add_ns(period_ns);
                    start = if next_period > now { next_period } else { now };
                    p.period_start = start;
                    p.used_in_period = 0;
                }
                (start, cost_ns)
            }
        };
        p.used_in_period = p.used_in_period.saturating_add(cost_ns);
        p.total_used += cost_ns;
        self.total_busy += cost_ns;

        // Pick the timeline: the shared lane for unisolated processes,
        // the process's own domain otherwise.
        let lane = match p.isolation {
            IsolationMode::None => &mut self.busy_until,
            _ => &mut p.own_busy_until,
        };
        let start = if *lane > start_floor {
            *lane
        } else {
            start_floor
        };
        let done = start.add_ns(effective_cost);
        *lane = done;
        done
    }

    /// Total CPU ns charged to one process.
    pub fn process_usage(&self, proc_: ProcId) -> u64 {
        self.procs[proc_.0].total_used
    }

    /// Time at which the CPU frees up.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_work_completes_after_cost() {
        let mut cpu = CpuModel::new();
        let p = cpu.add_process(IsolationMode::None);
        let done = cpu.run(p, Time::from_us(10), 500);
        assert_eq!(done, Time::from_us(10).add_ns(500));
    }

    #[test]
    fn colocated_work_serializes() {
        let mut cpu = CpuModel::new();
        let a = cpu.add_process(IsolationMode::None);
        let b = cpu.add_process(IsolationMode::None);
        let d1 = cpu.run(a, Time::ZERO, 1_000);
        let d2 = cpu.run(b, Time::ZERO, 1_000);
        assert_eq!(d1.as_ns(), 1_000);
        assert_eq!(d2.as_ns(), 2_000); // queued behind a
    }

    #[test]
    fn cpu_share_inflates_cost() {
        let mut cpu = CpuModel::new();
        let half = cpu.add_process(IsolationMode::CpuShare {
            weight: 1,
            total: 2,
        });
        let done = cpu.run(half, Time::ZERO, 1_000);
        assert_eq!(done.as_ns(), 2_000); // half the CPU -> twice the time
    }

    #[test]
    fn quota_defers_overflow_to_next_period() {
        let mut cpu = CpuModel::new();
        let q = cpu.add_process(IsolationMode::CpuQuota {
            quota_ns: 1_000,
            period_ns: 10_000,
        });
        // First item fits the quota.
        let d1 = cpu.run(q, Time::ZERO, 800);
        assert_eq!(d1.as_ns(), 800);
        // Second item (800 + 800 > 1000) waits for the next period at 10 µs.
        let d2 = cpu.run(q, d1, 800);
        assert_eq!(d2.as_ns(), 10_000 + 800);
    }

    #[test]
    fn quota_resets_after_idle_period() {
        let mut cpu = CpuModel::new();
        let q = cpu.add_process(IsolationMode::CpuQuota {
            quota_ns: 1_000,
            period_ns: 10_000,
        });
        cpu.run(q, Time::ZERO, 1_000);
        // Long idle: a fresh period begins at `now`, quota is fresh.
        let d = cpu.run(q, Time::from_us(100), 1_000);
        assert_eq!(d, Time::from_us(100).add_ns(1_000));
    }

    #[test]
    fn usage_accounting() {
        let mut cpu = CpuModel::new();
        let a = cpu.add_process(IsolationMode::None);
        let b = cpu.add_process(IsolationMode::CpuShare {
            weight: 1,
            total: 4,
        });
        cpu.run(a, Time::ZERO, 100);
        cpu.run(b, Time::ZERO, 200);
        assert_eq!(cpu.process_usage(a), 100);
        assert_eq!(cpu.process_usage(b), 200); // charged real cost, not inflated
        assert_eq!(cpu.total_busy, 300);
    }

    #[test]
    #[should_panic(expected = "invalid cpu share")]
    fn zero_weight_rejected() {
        CpuModel::new().add_process(IsolationMode::CpuShare {
            weight: 0,
            total: 1,
        });
    }

    #[test]
    #[should_panic(expected = "invalid quota")]
    fn quota_larger_than_period_rejected() {
        CpuModel::new().add_process(IsolationMode::CpuQuota {
            quota_ns: 10,
            period_ns: 5,
        });
    }
}
