//! Emulated links: bandwidth, propagation delay, loss, drop-tail queues.

use crate::time::Time;

/// Identifies a link within a [`crate::Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub u32);

/// Administrative state of a link (fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    Up,
    Down,
}

/// Static configuration of a full-duplex point-to-point link, mirroring the
/// parameters Mininet's `TCLink` exposes (bw, delay, loss, max_queue_size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Capacity in bits per second. `u64::MAX` disables serialization delay.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: Time,
    /// Probability in [0, 1] that a frame is dropped in transit.
    pub loss: f64,
    /// Egress queue capacity in packets, per direction. When the queue is
    /// full further frames are tail-dropped.
    pub queue_capacity: usize,
}

impl LinkConfig {
    /// A fast LAN-ish default: 1 Gbit/s, 50 µs delay, lossless, 100-packet
    /// queue.
    pub fn lan() -> Self {
        LinkConfig {
            bandwidth_bps: 1_000_000_000,
            delay: Time::from_us(50),
            loss: 0.0,
            queue_capacity: 100,
        }
    }

    /// An ideal link: infinite bandwidth, zero delay, lossless. Useful for
    /// isolating other effects in tests.
    pub fn ideal() -> Self {
        LinkConfig {
            bandwidth_bps: u64::MAX,
            delay: Time::ZERO,
            loss: 0.0,
            queue_capacity: usize::MAX,
        }
    }

    /// Builder-style bandwidth override (bits/s).
    pub fn with_bandwidth(mut self, bps: u64) -> Self {
        self.bandwidth_bps = bps;
        self
    }

    /// Builder-style delay override.
    pub fn with_delay(mut self, delay: Time) -> Self {
        self.delay = delay;
        self
    }

    /// Builder-style loss override.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.loss = loss;
        self
    }

    /// Builder-style queue capacity override.
    pub fn with_queue(mut self, packets: usize) -> Self {
        self.queue_capacity = packets;
        self
    }

    /// Serialization time of `len` bytes at this link's bandwidth.
    pub fn serialize_ns(&self, len: usize) -> u64 {
        if self.bandwidth_bps == u64::MAX {
            return 0;
        }
        // bits * 1e9 / bps, computed in u128 to avoid overflow.
        ((len as u128 * 8 * 1_000_000_000) / self.bandwidth_bps as u128) as u64
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::lan()
    }
}

/// Per-direction transmit state of a link: when the transmitter frees up
/// and how many frames are queued behind it.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TxState {
    /// Virtual time at which the transmitter finishes its current backlog.
    pub next_free: Time,
    /// Frames currently queued or in transmission.
    pub queued: usize,
}

/// A link instance inside the simulator.
#[derive(Debug)]
pub(crate) struct Link {
    pub cfg: LinkConfig,
    pub state: LinkState,
    /// Endpoints as (node index, port) pairs; direction 0 is a→b.
    pub ends: [(u32, u16); 2],
    pub tx: [TxState; 2],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_math() {
        let l = LinkConfig::lan(); // 1 Gbps
        assert_eq!(l.serialize_ns(125), 1_000); // 1000 bits at 1 Gbps = 1 µs
        assert_eq!(l.serialize_ns(1500), 12_000);
        let slow = LinkConfig::lan().with_bandwidth(1_000_000); // 1 Mbps
        assert_eq!(slow.serialize_ns(125), 1_000_000);
    }

    #[test]
    fn ideal_link_has_zero_serialization() {
        assert_eq!(LinkConfig::ideal().serialize_ns(100_000), 0);
    }

    #[test]
    fn builders_compose() {
        let l = LinkConfig::lan()
            .with_bandwidth(10_000_000)
            .with_delay(Time::from_ms(5))
            .with_loss(0.25)
            .with_queue(10);
        assert_eq!(l.bandwidth_bps, 10_000_000);
        assert_eq!(l.delay, Time::from_ms(5));
        assert!((l.loss - 0.25).abs() < f64::EPSILON);
        assert_eq!(l.queue_capacity, 10);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn loss_out_of_range_panics() {
        LinkConfig::lan().with_loss(1.5);
    }

    #[test]
    fn no_overflow_on_jumbo_at_low_bandwidth() {
        let l = LinkConfig::lan().with_bandwidth(1);
        // 65536 bytes at 1 bps = 524288 seconds; must not overflow.
        assert_eq!(l.serialize_ns(65536), 65536 * 8 * 1_000_000_000);
    }
}
