//! A simple end host: ARP, ICMP echo responder, UDP traffic source/sink.
//!
//! Hosts play the role of Mininet's `h1`, `h2`, ... — the endpoints the
//! demo's step (4) uses to "send and inspect live traffic". A host owns one
//! interface (port 0), answers ARP and ping, can originate paced UDP
//! streams, and keeps receive-side statistics including end-to-end latency
//! (computed from each packet's birth timestamp).

use crate::sim::{NodeCtx, NodeLogic};
use crate::time::Time;
use bytes::Bytes;
use escape_packet::{
    ArpPacket, EtherType, EthernetFrame, FramePool, IcmpPacket, IcmpType, IpProtocol, Ipv4Packet,
    MacAddr, Packet, PacketBuilder, UdpDatagram,
};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Receive/transmit statistics of a host.
#[derive(Debug, Clone, Default)]
pub struct HostStats {
    pub udp_rx: u64,
    pub udp_tx: u64,
    pub bytes_rx: u64,
    pub icmp_echo_rx: u64,
    pub icmp_reply_rx: u64,
    pub arp_rx: u64,
    /// Sum of end-to-end latencies (ns) of received UDP packets with a
    /// birth timestamp.
    pub latency_sum_ns: u64,
    /// Count of latency samples.
    pub latency_samples: u64,
    /// Maximum observed latency (ns).
    pub latency_max_ns: u64,
}

impl HostStats {
    /// Mean end-to-end latency over received UDP packets.
    pub fn mean_latency(&self) -> Option<Time> {
        self.latency_sum_ns
            .checked_div(self.latency_samples)
            .map(Time::from_ns)
    }
}

/// An active outgoing UDP stream.
#[derive(Debug, Clone)]
struct Stream {
    dst_ip: Ipv4Addr,
    sport: u16,
    dport: u16,
    frame_len: usize,
    interval: Time,
    remaining: u64,
}

/// An active ping schedule.
#[derive(Debug, Clone)]
struct PingJob {
    dst_ip: Ipv4Addr,
    interval: Time,
    remaining: u64,
    seq: u16,
}

/// Timer tokens `PING_TOKEN_BASE + k` drive ping job `k`; smaller tokens
/// drive UDP stream `k`.
const PING_TOKEN_BASE: u64 = 1 << 32;

/// Timer token that flushes frames queued with [`Host::queue_frame`].
const FLUSH_TOKEN: u64 = 1 << 33;

/// One UDP payload captured by a gateway host (a multi-domain boundary
/// SAP): everything the coordinator needs to re-originate the packet in
/// the next domain while preserving its end-to-end birth timestamp.
#[derive(Debug, Clone)]
pub struct GatewayRx {
    /// Virtual arrival time at the gateway.
    pub at: Time,
    /// Source IP of the captured datagram (identifies the flow).
    pub src: Ipv4Addr,
    /// UDP source port. Re-originated cross-domain legs carry a
    /// chain-specific port, so two chains arriving from the same
    /// upstream gateway stay distinguishable.
    pub src_port: u16,
    /// Birth timestamp carried by the frame (0 if unset). Forward this
    /// into [`Host::queue_frame`] so cross-domain latency stays end to
    /// end.
    pub born_ns: u64,
    /// The UDP payload.
    pub payload: Vec<u8>,
}

/// The host node. See the module docs.
pub struct Host {
    pub mac: MacAddr,
    pub ip: Ipv4Addr,
    pub stats: HostStats,
    arp_table: HashMap<Ipv4Addr, MacAddr>,
    /// Packets waiting for ARP resolution, keyed by next-hop IP.
    pending: HashMap<Ipv4Addr, Vec<Bytes>>,
    streams: Vec<Stream>,
    pings: Vec<PingJob>,
    /// Last payloads received, newest last (bounded, for demo inspection).
    pub inbox: Vec<Vec<u8>>,
    /// Gateway mode: received UDP payloads are captured into
    /// [`Host::gw_rx`] (with arrival time and birth timestamp) instead of
    /// the inbox, for cross-domain handoff.
    gateway: bool,
    /// Captured gateway arrivals, oldest first. Drained by the
    /// multi-domain coordinator between epochs.
    pub gw_rx: Vec<GatewayRx>,
    /// Frames queued by [`Host::queue_frame`] for transmission at the
    /// next [`Host::flush_queued`] timer, with an optional birth
    /// timestamp override.
    queued_tx: Vec<(Bytes, u64)>,
    /// Prebuilt stream frames, keyed by stream index and the resolved
    /// destination MAC (a re-learned MAC is a different key, so a stale
    /// frame is never served). A paced stream emits the same bytes every
    /// tick; pooling turns the per-packet layered encode into a refcount
    /// clone.
    tx_pool: FramePool<(usize, MacAddr)>,
}

/// Timer token namespace: stream k fires with token k.
const INBOX_CAP: usize = 64;

impl Host {
    /// Creates a host with the given addresses.
    pub fn new(mac: MacAddr, ip: Ipv4Addr) -> Self {
        Host {
            mac,
            ip,
            stats: HostStats::default(),
            arp_table: HashMap::new(),
            pending: HashMap::new(),
            streams: Vec::new(),
            pings: Vec::new(),
            inbox: Vec::new(),
            gateway: false,
            gw_rx: Vec::new(),
            queued_tx: Vec::new(),
            tx_pool: FramePool::new(),
        }
    }

    /// Flips gateway mode: received UDP payloads are captured into
    /// [`Host::gw_rx`] for cross-domain handoff.
    pub fn set_gateway(&mut self, on: bool) {
        self.gateway = on;
    }

    /// Queues a ready-made Ethernet frame for transmission at the next
    /// [`Host::flush_queued`] timer. `born_ns` (when non-zero) overrides
    /// the packet's birth timestamp so end-to-end latency measured at the
    /// final sink spans domain boundaries.
    pub fn queue_frame(&mut self, frame: Bytes, born_ns: u64) {
        self.queued_tx.push((frame, born_ns));
    }

    /// Arms the flush timer that transmits every queued frame `delay`
    /// from now.
    pub fn flush_queued(sim: &mut crate::sim::Sim, me: crate::sim::NodeId, delay: Time) {
        sim.set_timer_for(me, delay, FLUSH_TOKEN);
    }

    /// Pre-populates the ARP table (like Mininet's `--arp` static mode).
    pub fn static_arp(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.arp_table.insert(ip, mac);
    }

    /// Registers a paced UDP stream: `count` frames of `frame_len` bytes,
    /// one every `interval`, to `dst_ip`. Call before the sim starts and
    /// kick it off with [`Host::start_streams`].
    pub fn add_stream(
        &mut self,
        dst_ip: Ipv4Addr,
        sport: u16,
        dport: u16,
        frame_len: usize,
        interval: Time,
        count: u64,
    ) -> usize {
        self.streams.push(Stream {
            dst_ip,
            sport,
            dport,
            frame_len,
            interval,
            remaining: count,
        });
        self.streams.len() - 1
    }

    /// Registers a paced ping schedule: `count` echo requests to
    /// `dst_ip`, one every `interval`. Needs an ARP entry (static or
    /// learned) for the destination at fire time.
    pub fn add_ping(&mut self, dst_ip: Ipv4Addr, interval: Time, count: u64) -> usize {
        self.pings.push(PingJob {
            dst_ip,
            interval,
            remaining: count,
            seq: 0,
        });
        self.pings.len() - 1
    }

    /// Arms the first timer of every registered stream and ping job.
    /// `sim` must be the simulation this host lives in and `me` this
    /// host's node id.
    pub fn start_streams(sim: &mut crate::sim::Sim, me: crate::sim::NodeId, at: Time) {
        let (n, p) = {
            let h = sim.node_as::<Host>(me).expect("node is not a Host");
            (h.streams.len(), h.pings.len())
        };
        for k in 0..n {
            sim.set_timer_for(me, at, k as u64);
        }
        for k in 0..p {
            sim.set_timer_for(me, at, PING_TOKEN_BASE + k as u64);
        }
    }

    fn emit_ping(&mut self, ctx: &mut NodeCtx<'_>, k: usize) {
        let job = self.pings[k].clone();
        if job.remaining == 0 {
            return;
        }
        self.pings[k].remaining -= 1;
        self.pings[k].seq = self.pings[k].seq.wrapping_add(1);
        let seq = self.pings[k].seq;
        self.ping(ctx, job.dst_ip, seq);
        if self.pings[k].remaining > 0 {
            ctx.set_timer(job.interval, PING_TOKEN_BASE + k as u64);
        }
    }

    fn emit_udp(&mut self, ctx: &mut NodeCtx<'_>, k: usize) {
        let s = self.streams[k].clone();
        if s.remaining == 0 {
            return;
        }
        self.streams[k].remaining -= 1;
        if let Some(&dst_mac) = self.arp_table.get(&s.dst_ip) {
            let (mac, ip) = (self.mac, self.ip);
            let frame = self.tx_pool.get_or_build((k, dst_mac), || {
                PacketBuilder::udp_with_len(
                    mac,
                    dst_mac,
                    ip,
                    s.dst_ip,
                    s.sport,
                    s.dport,
                    s.frame_len,
                )
            });
            let pkt = ctx.new_packet(frame);
            self.stats.udp_tx += 1;
            ctx.send(0, pkt);
        } else {
            // Resolve first; queue the frame against the resolution.
            let frame = PacketBuilder::udp_with_len(
                self.mac,
                MacAddr::ZERO, // fixed up on resolution
                self.ip,
                s.dst_ip,
                s.sport,
                s.dport,
                s.frame_len,
            );
            self.pending.entry(s.dst_ip).or_default().push(frame);
            let req = PacketBuilder::arp_request(self.mac, self.ip, s.dst_ip);
            let pkt = ctx.new_packet(req);
            ctx.send(0, pkt);
        }
        if self.streams[k].remaining > 0 {
            ctx.set_timer(s.interval, k as u64);
        }
    }

    fn flush_pending(&mut self, ctx: &mut NodeCtx<'_>, ip: Ipv4Addr, mac: MacAddr) {
        if let Some(frames) = self.pending.remove(&ip) {
            for frame in frames {
                // Patch the destination MAC (first 6 bytes of the frame).
                let mut v = frame.to_vec();
                v[0..6].copy_from_slice(&mac.0);
                let pkt = ctx.new_packet(Bytes::from(v));
                self.stats.udp_tx += 1;
                ctx.send(0, pkt);
            }
        }
    }

    fn handle_arp(&mut self, ctx: &mut NodeCtx<'_>, eth: &EthernetFrame) {
        self.stats.arp_rx += 1;
        let Ok(arp) = ArpPacket::decode(&eth.payload) else {
            return;
        };
        // Learn the sender binding either way.
        self.arp_table.insert(arp.sender_ip, arp.sender_mac);
        self.flush_pending(ctx, arp.sender_ip, arp.sender_mac);
        if arp.operation == escape_packet::ArpOperation::Request && arp.target_ip == self.ip {
            let rep = ArpPacket::reply_to(&arp, self.mac).encode();
            let frame = EthernetFrame::new(arp.sender_mac, self.mac, EtherType::Arp, rep).encode();
            let pkt = ctx.new_packet(frame);
            ctx.send(0, pkt);
        }
    }

    fn handle_ipv4(&mut self, ctx: &mut NodeCtx<'_>, pkt: &Packet, eth: &EthernetFrame) {
        let Ok(ip) = Ipv4Packet::decode(&eth.payload) else {
            return;
        };
        if ip.dst != self.ip {
            return; // not for us (hosts don't forward)
        }
        match ip.protocol {
            IpProtocol::Udp => {
                if let Ok(udp) = UdpDatagram::decode(&ip.payload, ip.src, ip.dst) {
                    self.stats.udp_rx += 1;
                    self.stats.bytes_rx += pkt.len() as u64;
                    if pkt.born_ns != 0 {
                        let lat = ctx.now().as_ns().saturating_sub(pkt.born_ns);
                        self.stats.latency_sum_ns += lat;
                        self.stats.latency_samples += 1;
                        self.stats.latency_max_ns = self.stats.latency_max_ns.max(lat);
                    }
                    if self.gateway {
                        self.gw_rx.push(GatewayRx {
                            at: ctx.now(),
                            src: ip.src,
                            src_port: udp.src_port,
                            born_ns: pkt.born_ns,
                            payload: udp.payload.to_vec(),
                        });
                    } else if self.inbox.len() < INBOX_CAP {
                        self.inbox.push(udp.payload.to_vec());
                    }
                }
            }
            IpProtocol::Icmp => {
                if let Ok(icmp) = IcmpPacket::decode(&ip.payload) {
                    match icmp.icmp_type {
                        IcmpType::EchoRequest => {
                            self.stats.icmp_echo_rx += 1;
                            let rep = IcmpPacket::echo_reply(&icmp).encode();
                            let ipp =
                                Ipv4Packet::new(self.ip, ip.src, IpProtocol::Icmp, rep).encode();
                            let frame = EthernetFrame::new(eth.src, self.mac, EtherType::Ipv4, ipp)
                                .encode();
                            let out = ctx.new_packet(frame);
                            ctx.send(0, out);
                        }
                        IcmpType::EchoReply => {
                            self.stats.icmp_reply_rx += 1;
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }

    /// Sends one ICMP echo request (needs an ARP entry for `dst_ip`).
    pub fn ping(&mut self, ctx: &mut NodeCtx<'_>, dst_ip: Ipv4Addr, seq: u16) -> bool {
        let Some(&mac) = self.arp_table.get(&dst_ip) else {
            return false;
        };
        let frame = PacketBuilder::icmp_echo_request(self.mac, mac, self.ip, dst_ip, 1, seq);
        let pkt = ctx.new_packet(frame);
        ctx.send(0, pkt);
        true
    }
}

impl NodeLogic for Host {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: u16, pkt: Packet) {
        let Ok(eth) = EthernetFrame::decode(&pkt.data) else {
            return;
        };
        if eth.dst != self.mac && !eth.dst.is_broadcast() {
            return; // promiscuous filtering off
        }
        match eth.ethertype {
            EtherType::Arp => self.handle_arp(ctx, &eth),
            EtherType::Ipv4 => self.handle_ipv4(ctx, &pkt, &eth),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if token == FLUSH_TOKEN {
            for (frame, born_ns) in std::mem::take(&mut self.queued_tx) {
                let mut pkt = ctx.new_packet(frame);
                if born_ns != 0 {
                    pkt.born_ns = born_ns;
                }
                self.stats.udp_tx += 1;
                ctx.send(0, pkt);
            }
            return;
        }
        if token >= PING_TOKEN_BASE {
            let k = (token - PING_TOKEN_BASE) as usize;
            if k < self.pings.len() {
                self.emit_ping(ctx, k);
            }
            return;
        }
        let k = token as usize;
        if k < self.streams.len() {
            self.emit_udp(ctx, k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::sim::Sim;

    fn hosts_back_to_back() -> (Sim, crate::sim::NodeId, crate::sim::NodeId) {
        let mut sim = Sim::new(7);
        let a = Host::new(MacAddr::from_id(1), Ipv4Addr::new(10, 0, 0, 1));
        let b = Host::new(MacAddr::from_id(2), Ipv4Addr::new(10, 0, 0, 2));
        let na = sim.add_node("h1", 1, Box::new(a));
        let nb = sim.add_node("h2", 1, Box::new(b));
        sim.connect((na, 0), (nb, 0), LinkConfig::lan());
        (sim, na, nb)
    }

    #[test]
    fn udp_stream_with_arp_resolution_delivers_everything() {
        let (mut sim, na, nb) = hosts_back_to_back();
        sim.node_as_mut::<Host>(na).unwrap().add_stream(
            Ipv4Addr::new(10, 0, 0, 2),
            5000,
            9000,
            100,
            Time::from_us(100),
            50,
        );
        Host::start_streams(&mut sim, na, Time::ZERO);
        sim.run(100_000);
        let hb = sim.node_as::<Host>(nb).unwrap();
        assert_eq!(hb.stats.udp_rx, 50);
        assert!(hb.stats.mean_latency().unwrap() >= Time::from_us(50)); // at least propagation
        let ha = sim.node_as::<Host>(na).unwrap();
        assert_eq!(ha.stats.udp_tx, 50);
    }

    #[test]
    fn static_arp_skips_resolution() {
        let (mut sim, na, nb) = hosts_back_to_back();
        {
            let ha = sim.node_as_mut::<Host>(na).unwrap();
            ha.static_arp(Ipv4Addr::new(10, 0, 0, 2), MacAddr::from_id(2));
            ha.add_stream(Ipv4Addr::new(10, 0, 0, 2), 1, 2, 64, Time::from_us(10), 3);
        }
        Host::start_streams(&mut sim, na, Time::ZERO);
        sim.run(10_000);
        assert_eq!(sim.node_as::<Host>(nb).unwrap().stats.arp_rx, 0);
        assert_eq!(sim.node_as::<Host>(nb).unwrap().stats.udp_rx, 3);
    }

    #[test]
    fn stream_frames_are_pooled_after_first_build() {
        let (mut sim, na, nb) = hosts_back_to_back();
        {
            let ha = sim.node_as_mut::<Host>(na).unwrap();
            ha.static_arp(Ipv4Addr::new(10, 0, 0, 2), MacAddr::from_id(2));
            ha.add_stream(Ipv4Addr::new(10, 0, 0, 2), 1, 2, 64, Time::from_us(10), 20);
        }
        Host::start_streams(&mut sim, na, Time::ZERO);
        sim.run(100_000);
        let ha = sim.node_as::<Host>(na).unwrap();
        assert_eq!(
            (ha.tx_pool.builds, ha.tx_pool.hits),
            (1, 19),
            "one layered encode, nineteen refcount clones"
        );
        assert_eq!(sim.node_as::<Host>(nb).unwrap().stats.udp_rx, 20);
    }

    #[test]
    fn ping_round_trip() {
        let (mut sim, na, nb) = hosts_back_to_back();
        // Resolve b's MAC first via a 1-packet stream... simpler: static.
        sim.node_as_mut::<Host>(na)
            .unwrap()
            .static_arp(Ipv4Addr::new(10, 0, 0, 2), MacAddr::from_id(2));
        // Drive the ping from a timer-like injection: build the echo frame
        // directly and inject it at b-side port of a's interface.
        let frame = PacketBuilder::icmp_echo_request(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            1,
        );
        sim.inject(nb, 0, frame, Time::ZERO);
        sim.run(1000);
        assert_eq!(sim.node_as::<Host>(nb).unwrap().stats.icmp_echo_rx, 1);
        assert_eq!(sim.node_as::<Host>(na).unwrap().stats.icmp_reply_rx, 1);
    }

    #[test]
    fn frames_for_other_macs_are_ignored() {
        let (mut sim, _na, nb) = hosts_back_to_back();
        let frame = PacketBuilder::udp(
            MacAddr::from_id(9),
            MacAddr::from_id(77), // not b's MAC
            Ipv4Addr::new(10, 0, 0, 9),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            Bytes::from_static(b"not-mine"),
        );
        sim.inject(nb, 0, frame, Time::ZERO);
        sim.run(100);
        assert_eq!(sim.node_as::<Host>(nb).unwrap().stats.udp_rx, 0);
    }

    #[test]
    fn inbox_captures_payloads() {
        let (mut sim, na, nb) = hosts_back_to_back();
        sim.node_as_mut::<Host>(na)
            .unwrap()
            .static_arp(Ipv4Addr::new(10, 0, 0, 2), MacAddr::from_id(2));
        let frame = PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1234,
            80,
            Bytes::from_static(b"inspect me"),
        );
        sim.inject(nb, 0, frame, Time::ZERO);
        sim.run(100);
        let hb = sim.node_as::<Host>(nb).unwrap();
        assert_eq!(hb.inbox.len(), 1);
        assert_eq!(hb.inbox[0], b"inspect me");
    }
}
