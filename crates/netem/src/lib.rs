//! # escape-netem
//!
//! A deterministic discrete-event network emulator — the Mininet role in
//! ESCAPE-RS.
//!
//! Mininet builds emulated networks out of kernel primitives (veth pairs,
//! network namespaces, cgroups, Open vSwitch). This crate provides the same
//! abstractions as a *simulated* substrate so that every higher layer of
//! ESCAPE (OpenFlow switches, Click VNFs, NETCONF agents, the POX
//! controller) runs unmodified control logic over a reproducible network:
//!
//! * a virtual clock in nanoseconds ([`Time`]) and an event queue with
//!   strictly deterministic ordering ([`sim::Sim`]);
//! * nodes implementing [`sim::NodeLogic`] connected by [`link::LinkConfig`]
//!   links with bandwidth (serialization delay), propagation delay, finite
//!   drop-tail egress queues and seeded random loss;
//! * a *control network* of reliable ordered message channels (the paper's
//!   "dedicated control network" for NETCONF agents and the OpenFlow
//!   control channel);
//! * a cgroup-like CPU model ([`process::CpuModel`]) so VNF packet
//!   processing costs contend for container CPU under configurable
//!   isolation ([`process::IsolationMode`]);
//! * fault injection (link down/up, loss) and a packet trace facility
//!   ([`trace::Trace`]) standing in for pcap dumps.
//!
//! Everything is single-threaded and sans-IO: a run is a pure function of
//! the topology, the workload and the seed.

pub mod fault;
pub mod host;
pub mod link;
pub mod process;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultPlanError, FaultRecord};
pub use host::{GatewayRx, Host, HostStats};
pub use link::{LinkConfig, LinkId, LinkState};
pub use process::{CpuModel, IsolationMode};
pub use sim::{CtrlId, NodeCtx, NodeId, NodeLogic, Sim};
pub use stats::SimStats;
pub use time::Time;
pub use trace::{DropReason, HopDetail, Trace, TraceDir, TraceRecord};
