//! Run-level counters.

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events dispatched.
    pub events: u64,
    /// Frames handed to links.
    pub frames_sent: u64,
    /// Frames delivered to nodes.
    pub frames_delivered: u64,
    /// Frames dropped by full egress queues.
    pub drops_queue: u64,
    /// Frames dropped by random loss.
    pub drops_loss: u64,
    /// Frames dropped because the link was administratively down.
    pub drops_link_down: u64,
    /// Control-channel messages delivered.
    pub ctrl_messages: u64,
    /// Timer events fired.
    pub timers: u64,
}

impl SimStats {
    /// All frames dropped, regardless of cause.
    pub fn drops_total(&self) -> u64 {
        self.drops_queue + self.drops_loss + self.drops_link_down
    }

    /// Delivery ratio in [0, 1]; 1.0 when nothing was sent.
    pub fn delivery_ratio(&self) -> f64 {
        if self.frames_sent == 0 {
            1.0
        } else {
            self.frames_delivered as f64 / self.frames_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_total_sums_causes() {
        let s = SimStats {
            drops_queue: 1,
            drops_loss: 2,
            drops_link_down: 3,
            ..Default::default()
        };
        assert_eq!(s.drops_total(), 6);
    }

    #[test]
    fn delivery_ratio_handles_zero_sent() {
        assert_eq!(SimStats::default().delivery_ratio(), 1.0);
        let s = SimStats {
            frames_sent: 4,
            frames_delivered: 3,
            ..Default::default()
        };
        assert!((s.delivery_ratio() - 0.75).abs() < 1e-12);
    }
}
