//! The discrete-event simulation kernel.
//!
//! A [`Sim`] owns the topology (nodes, links, control channels), the event
//! queue and the virtual clock. Node behaviour is injected through the
//! [`NodeLogic`] trait; during an event dispatch the node receives a
//! [`NodeCtx`] through which it can transmit frames, arm timers and talk on
//! control channels. Event ordering is strictly deterministic: ties in
//! virtual time break on a monotone sequence number, and all randomness
//! (link loss) comes from one seeded RNG.

use crate::link::{Link, LinkConfig, LinkId, LinkState};
use crate::stats::SimStats;
use crate::time::Time;
use crate::trace::{DropReason, HopDetail, Trace, TraceDir, TraceRecord};
use bytes::Bytes;
use escape_packet::Packet;
use escape_telemetry::{Counter, Gauge, Registry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Cached handles into the telemetry [`Registry`] for the kernel's hot
/// paths — one atomic increment per event, no lookups.
struct SimCounters {
    events: Counter,
    timers: Counter,
    ctrl_messages: Counter,
    frames_sent: Counter,
    frames_delivered: Counter,
    drops_queue: Counter,
    drops_loss: Counter,
    drops_link_down: Counter,
    /// Frames sitting in egress queues right now, across all links.
    queued_frames: Gauge,
    /// High-water mark of `queued_frames`.
    queued_frames_max: Gauge,
}

impl SimCounters {
    fn new(r: &Registry) -> SimCounters {
        SimCounters {
            events: r.counter("netem.events"),
            timers: r.counter("netem.timers"),
            ctrl_messages: r.counter("netem.ctrl_messages"),
            frames_sent: r.counter("netem.frames_sent"),
            frames_delivered: r.counter("netem.frames_delivered"),
            drops_queue: r.counter("netem.drops.queue"),
            drops_loss: r.counter("netem.drops.loss"),
            drops_link_down: r.counter("netem.drops.link_down"),
            queued_frames: r.gauge("netem.queued_frames"),
            queued_frames_max: r.gauge("netem.queued_frames.max"),
        }
    }

    fn enqueue(&self) {
        self.queued_frames.add(1);
        let depth = self.queued_frames.get();
        if depth > self.queued_frames_max.get() {
            self.queued_frames_max.set(depth);
        }
    }
}

/// Identifies a node within a [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifies a control channel within a [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CtrlId(pub u32);

/// Object-safe `Any` access for node logic, so callers can downcast a node
/// back to its concrete type (e.g. to read host counters after a run).
pub trait AsAny {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Behaviour of a node. Implementations are state machines driven by the
/// kernel: frames in, timers, control messages — frames out via the ctx.
pub trait NodeLogic: AsAny + Send {
    /// A frame arrived on `port`.
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: u16, pkt: Packet);

    /// A timer armed with [`NodeCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _token: u64) {}

    /// A message arrived on a control channel this node terminates.
    fn on_ctrl(&mut self, _ctx: &mut NodeCtx<'_>, _conn: CtrlId, _msg: Vec<u8>) {}
}

enum Event {
    PacketArrive {
        node: u32,
        port: u16,
        pkt: Packet,
    },
    TxComplete {
        link: u32,
        dir: u8,
    },
    Timer {
        node: u32,
        token: u64,
    },
    CtrlDeliver {
        conn: u32,
        to_node: u32,
        msg: Vec<u8>,
    },
}

struct Scheduled {
    at: Time,
    seq: u64,
    ev: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct NodeSlot {
    name: String,
    logic: Option<Box<dyn NodeLogic>>,
    /// Logic parked by [`Sim::pause_node`] (a stalled process): events
    /// are discarded until [`Sim::resume_node`] moves it back.
    parked: Option<Box<dyn NodeLogic>>,
    /// port index -> (link index, our direction on that link)
    ports: Vec<Option<(u32, u8)>>,
}

struct Ctrl {
    ends: [u32; 2],
    latency: Time,
}

/// The simulation kernel. See the module docs.
pub struct Sim {
    clock: Time,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    /// Fast lane for the current timestamp cohort: events scheduled *at*
    /// the current clock while it is being processed. Anything landing
    /// here carries a seq greater than every queued event at this time
    /// (seq is globally monotone and heap entries at `clock` predate the
    /// clock reaching it), so FIFO order here — merged against the heap
    /// by `(at, seq)` in [`Sim::pop_next`] — reproduces the pure-heap
    /// dispatch order exactly while skipping the heap's O(log n) ops for
    /// same-timestamp cascades (Click chains, ideal links, fan-out).
    due_now: VecDeque<Scheduled>,
    /// Routes every schedule through the heap (the reference one-at-a-time
    /// discipline) — used by regression tests to prove the fast lane
    /// changes nothing.
    strict_heap: bool,
    nodes: Vec<NodeSlot>,
    links: Vec<Link>,
    ctrls: Vec<Ctrl>,
    rng: SmallRng,
    next_packet_id: u64,
    telemetry: Registry,
    counters: SimCounters,
    /// Per-link drop counters (`netem.link_drops{link="a-b"}`), parallel
    /// to `links`.
    link_drops: Vec<Counter>,
    /// Optional packet trace (pcap stand-in).
    pub trace: Option<Trace>,
}

impl Sim {
    /// Creates an empty simulation with the given RNG seed. Two sims with
    /// the same seed, topology and workload produce identical runs.
    pub fn new(seed: u64) -> Self {
        Sim::with_registry(seed, Registry::new())
    }

    /// Like [`Sim::new`], but recording telemetry into a shared registry
    /// (so the whole stack — kernel, controller, orchestrator — lands in
    /// one snapshot).
    pub fn with_registry(seed: u64, telemetry: Registry) -> Self {
        let counters = SimCounters::new(&telemetry);
        Sim {
            clock: Time::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            due_now: VecDeque::new(),
            strict_heap: false,
            nodes: Vec::new(),
            links: Vec::new(),
            ctrls: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            next_packet_id: 1,
            telemetry,
            counters,
            link_drops: Vec::new(),
            trace: None,
        }
    }

    /// The telemetry registry this simulation records into.
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Aggregate counters for the run, read back from the telemetry
    /// registry (compatibility view; the registry is the single source
    /// of truth).
    pub fn stats(&self) -> SimStats {
        SimStats {
            events: self.counters.events.get(),
            frames_sent: self.counters.frames_sent.get(),
            frames_delivered: self.counters.frames_delivered.get(),
            drops_queue: self.counters.drops_queue.get(),
            drops_loss: self.counters.drops_loss.get(),
            drops_link_down: self.counters.drops_link_down.get(),
            ctrl_messages: self.counters.ctrl_messages.get(),
            timers: self.counters.timers.get(),
        }
    }

    /// Enables packet tracing, keeping at most `cap` records.
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(Trace::with_capacity(cap));
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.clock
    }

    /// Adds a node; `ports` is the number of dataplane ports it exposes.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        ports: u16,
        logic: Box<dyn NodeLogic>,
    ) -> NodeId {
        let id = self.nodes.len() as u32;
        self.nodes.push(NodeSlot {
            name: name.into(),
            logic: Some(logic),
            parked: None,
            ports: vec![None; ports as usize],
        });
        NodeId(id)
    }

    /// Finds a node by name (first match).
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Every link whose endpoints are the named nodes, in either order
    /// (parallel links between the same pair are all returned).
    pub fn find_links(&self, a: &str, b: &str) -> Vec<LinkId> {
        let (Some(na), Some(nb)) = (self.find_node(a), self.find_node(b)) else {
            return Vec::new();
        };
        let key = if na.0 <= nb.0 {
            [na.0, nb.0]
        } else {
            [nb.0, na.0]
        };
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                let mut ends = [l.ends[0].0, l.ends[1].0];
                ends.sort_unstable();
                ends == key
            })
            .map(|(i, _)| LinkId(i as u32))
            .collect()
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// A node's name.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0 as usize].name
    }

    /// Mutable access to a node's concrete logic type. Panics if the node
    /// is currently being dispatched. Returns `None` on a type mismatch.
    pub fn node_as_mut<T: NodeLogic + 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        self.nodes[node.0 as usize]
            .logic
            .as_deref_mut()
            .expect("node is being dispatched")
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Shared access to a node's concrete logic type.
    pub fn node_as<T: NodeLogic + 'static>(&self, node: NodeId) -> Option<&T> {
        self.nodes[node.0 as usize]
            .logic
            .as_deref()
            .expect("node is being dispatched")
            .as_any()
            .downcast_ref::<T>()
    }

    /// Shared access to a node's concrete logic type that tolerates the
    /// node being parked (paused) or dead: observers (invariant checks,
    /// state fingerprints) may inspect a stalled node's state, and get
    /// `None` for a killed node instead of a panic.
    pub fn peek_node_as<T: NodeLogic + 'static>(&self, node: NodeId) -> Option<&T> {
        let slot = &self.nodes[node.0 as usize];
        slot.logic
            .as_deref()
            .or(slot.parked.as_deref())?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Connects `a.0` port `a.1` to `b.0` port `b.1` with a full-duplex
    /// link. Panics if a port is out of range or already wired.
    pub fn connect(&mut self, a: (NodeId, u16), b: (NodeId, u16), cfg: LinkConfig) -> LinkId {
        let id = self.links.len() as u32;
        for (end, (node, port)) in [(0u8, a), (1u8, b)] {
            let slot = &mut self.nodes[node.0 as usize];
            let p = slot
                .ports
                .get_mut(port as usize)
                .unwrap_or_else(|| panic!("node {} has no port {}", node.0, port));
            assert!(p.is_none(), "node {} port {} already wired", node.0, port);
            *p = Some((id, end));
        }
        let label = format!(
            "{}-{}",
            self.nodes[a.0 .0 as usize].name, self.nodes[b.0 .0 as usize].name
        );
        self.link_drops.push(
            self.telemetry
                .counter_with("netem.link_drops", &[("link", &label)]),
        );
        self.links.push(Link {
            cfg,
            state: LinkState::Up,
            ends: [(a.0 .0, a.1), (b.0 .0, b.1)],
            tx: Default::default(),
        });
        LinkId(id)
    }

    /// Number of links created so far (link ids are dense from 0).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Administratively flips a link (fault injection).
    pub fn set_link_state(&mut self, link: LinkId, state: LinkState) {
        self.links[link.0 as usize].state = state;
    }

    /// Changes a link's random loss probability (fault injection).
    pub fn set_link_loss(&mut self, link: LinkId, loss: f64) {
        assert!((0.0..=1.0).contains(&loss));
        self.links[link.0 as usize].cfg.loss = loss;
    }

    /// A link's current loss probability.
    pub fn link_loss(&self, link: LinkId) -> f64 {
        self.links[link.0 as usize].cfg.loss
    }

    /// Changes a link's propagation delay (fault injection).
    pub fn set_link_delay(&mut self, link: LinkId, delay: Time) {
        self.links[link.0 as usize].cfg.delay = delay;
    }

    /// A link's current propagation delay.
    pub fn link_delay(&self, link: LinkId) -> Time {
        self.links[link.0 as usize].cfg.delay
    }

    /// A link's current administrative state.
    pub fn link_state(&self, link: LinkId) -> LinkState {
        self.links[link.0 as usize].state
    }

    /// Creates a control channel between two nodes: reliable, ordered,
    /// fixed-latency message delivery in both directions. This models the
    /// paper's dedicated control network (NETCONF sessions, the OpenFlow
    /// control channel).
    pub fn ctrl_connect(&mut self, a: NodeId, b: NodeId, latency: Time) -> CtrlId {
        let id = self.ctrls.len() as u32;
        self.ctrls.push(Ctrl {
            ends: [a.0, b.0],
            latency,
        });
        CtrlId(id)
    }

    /// Sends `msg` on `conn` as `from`; it will be delivered to the other
    /// endpoint after the channel latency.
    pub fn ctrl_send_from(&mut self, from: NodeId, conn: CtrlId, msg: Vec<u8>) {
        let c = &self.ctrls[conn.0 as usize];
        let to = if c.ends[0] == from.0 {
            c.ends[1]
        } else if c.ends[1] == from.0 {
            c.ends[0]
        } else {
            panic!("node {} is not an endpoint of ctrl {}", from.0, conn.0)
        };
        let at = self.clock + c.latency;
        self.schedule(
            at,
            Event::CtrlDeliver {
                conn: conn.0,
                to_node: to,
                msg,
            },
        );
    }

    /// Injects a frame so it arrives at `node` on `port` at time `at`
    /// (which must not be in the past). Returns the packet id for tracing.
    pub fn inject(&mut self, node: NodeId, port: u16, data: Bytes, at: Time) -> u64 {
        assert!(at >= self.clock, "cannot inject into the past");
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        let pkt = Packet {
            data,
            id,
            born_ns: at.as_ns(),
        };
        self.schedule(
            at,
            Event::PacketArrive {
                node: node.0,
                port,
                pkt,
            },
        );
        id
    }

    /// Arms a timer for `node` (used by node constructors; inside a
    /// dispatch use [`NodeCtx::set_timer`]).
    pub fn set_timer_for(&mut self, node: NodeId, delay: Time, token: u64) {
        let at = self.clock + delay;
        self.schedule(
            at,
            Event::Timer {
                node: node.0,
                token,
            },
        );
    }

    fn schedule(&mut self, at: Time, ev: Event) {
        let seq = self.seq;
        self.seq += 1;
        let s = Scheduled { at, seq, ev };
        if at == self.clock && !self.strict_heap {
            self.due_now.push_back(s);
        } else {
            self.queue.push(s);
        }
    }

    /// Disables (`true`) or re-enables (`false`) the same-timestamp fast
    /// lane, moving any cohort in flight back onto the heap. The
    /// reference discipline for differential tests; dispatch order is
    /// identical either way.
    pub fn set_strict_heap(&mut self, strict: bool) {
        self.strict_heap = strict;
        if strict {
            self.queue.extend(self.due_now.drain(..));
        }
    }

    /// Picks the globally earliest pending event by `(at, seq)` across
    /// the fast lane and the heap. The fast lane only ever holds events
    /// at the current clock, so it always drains before time advances.
    fn pop_next(&mut self) -> Option<Scheduled> {
        match (self.due_now.front(), self.queue.peek()) {
            (Some(d), Some(h)) => {
                if (d.at, d.seq) < (h.at, h.seq) {
                    self.due_now.pop_front()
                } else {
                    self.queue.pop()
                }
            }
            (Some(_), None) => self.due_now.pop_front(),
            (None, _) => self.queue.pop(),
        }
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        match (self.due_now.front(), self.queue.peek()) {
            (Some(d), Some(h)) => Some(d.at.min(h.at)),
            (Some(d), None) => Some(d.at),
            (None, h) => h.map(|s| s.at),
        }
    }

    /// Runs until the queue drains or `limit` events have been dispatched.
    /// Returns the number of events dispatched.
    pub fn run(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        n
    }

    /// Runs while events are scheduled at or before `deadline`. Events
    /// scheduled later stay queued; the clock advances to at most
    /// `deadline`.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        let mut n = 0;
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        if self.clock < deadline {
            self.clock = deadline;
        }
        n
    }

    /// Dispatches one event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(s) = self.pop_next() else {
            return false;
        };
        debug_assert!(s.at >= self.clock, "time went backwards");
        self.clock = s.at;
        self.counters.events.inc();
        match s.ev {
            Event::PacketArrive { node, port, pkt } => {
                self.counters.frames_delivered.inc();
                if let Some(tr) = &mut self.trace {
                    let mut rec = TraceRecord::wire(
                        self.clock,
                        NodeId(node),
                        port,
                        TraceDir::Rx,
                        pkt.len(),
                        pkt.id,
                    );
                    rec.data = tr.capture_payloads.then(|| pkt.data.clone());
                    tr.record(rec);
                }
                self.dispatch(node, |logic, ctx| logic.on_packet(ctx, port, pkt));
            }
            Event::TxComplete { link, dir } => {
                let tx = &mut self.links[link as usize].tx[dir as usize];
                if tx.queued > 0 {
                    self.counters.queued_frames.sub(1);
                }
                tx.queued = tx.queued.saturating_sub(1);
            }
            Event::Timer { node, token } => {
                self.counters.timers.inc();
                self.dispatch(node, |logic, ctx| logic.on_timer(ctx, token));
            }
            Event::CtrlDeliver { conn, to_node, msg } => {
                self.counters.ctrl_messages.inc();
                self.dispatch(to_node, |logic, ctx| logic.on_ctrl(ctx, CtrlId(conn), msg));
            }
        }
        true
    }

    fn dispatch<F: FnOnce(&mut Box<dyn NodeLogic>, &mut NodeCtx<'_>)>(&mut self, node: u32, f: F) {
        let mut logic = match self.nodes[node as usize].logic.take() {
            Some(l) => l,
            // Node was removed (e.g. crashed VNF container) — drop event.
            None => return,
        };
        let mut ctx = NodeCtx {
            sim: self,
            node: NodeId(node),
        };
        f(&mut logic, &mut ctx);
        self.nodes[node as usize].logic = Some(logic);
    }

    /// Transmits `pkt` from `node` out of `port` over the attached link,
    /// modelling queueing, serialization, propagation and loss.
    pub fn transmit_from(&mut self, node: NodeId, port: u16, pkt: Packet) {
        let slot = &self.nodes[node.0 as usize];
        let Some(Some((link_idx, dir))) = slot.ports.get(port as usize).copied() else {
            // Unwired port: the frame falls on the floor, as with a real
            // cable-less interface — but the drop is attributed.
            self.record_drop(node, port, &pkt, DropReason::NoRoute, None);
            return;
        };
        self.counters.frames_sent.inc();
        if let Some(tr) = &mut self.trace {
            let mut rec =
                TraceRecord::wire(self.clock, node, port, TraceDir::Tx, pkt.len(), pkt.id);
            rec.data = tr.capture_payloads.then(|| pkt.data.clone());
            tr.record(rec);
        }
        let now = self.clock;
        let (state, loss) = {
            let l = &self.links[link_idx as usize];
            (l.state, l.cfg.loss)
        };
        if state == LinkState::Down {
            self.counters.drops_link_down.inc();
            self.record_drop(node, port, &pkt, DropReason::LinkDown, Some(link_idx));
            return;
        }
        if loss > 0.0 && self.rng.gen::<f64>() < loss {
            self.counters.drops_loss.inc();
            self.record_drop(node, port, &pkt, DropReason::RandomLoss, Some(link_idx));
            return;
        }
        let full = {
            let l = &self.links[link_idx as usize];
            l.tx[dir as usize].queued >= l.cfg.queue_capacity
        };
        if full {
            self.counters.drops_queue.inc();
            self.record_drop(node, port, &pkt, DropReason::QueueFull, Some(link_idx));
            return;
        }
        let link = &mut self.links[link_idx as usize];
        let tx = &mut link.tx[dir as usize];
        tx.queued += 1;
        self.counters.enqueue();
        let start = if tx.next_free > now {
            tx.next_free
        } else {
            now
        };
        let done = start.add_ns(link.cfg.serialize_ns(pkt.len()));
        tx.next_free = done;
        let (peer_node, peer_port) = link.ends[1 - dir as usize];
        let arrive = done + link.cfg.delay;
        self.schedule(
            done,
            Event::TxComplete {
                link: link_idx,
                dir,
            },
        );
        self.schedule(
            arrive,
            Event::PacketArrive {
                node: peer_node,
                port: peer_port,
                pkt,
            },
        );
    }

    /// Counts a drop under `netem.drops{reason=...}` (plus the per-link
    /// counter when the drop happened on a link) and records a typed
    /// `Drop` trace record.
    fn record_drop(
        &mut self,
        node: NodeId,
        port: u16,
        pkt: &Packet,
        reason: DropReason,
        link_idx: Option<u32>,
    ) {
        self.count_drop_reason(reason);
        if let Some(idx) = link_idx {
            self.link_drops[idx as usize].inc();
        }
        if let Some(tr) = &mut self.trace {
            let mut rec =
                TraceRecord::wire(self.clock, node, port, TraceDir::Drop, pkt.len(), pkt.id);
            rec.drop = Some(reason);
            tr.record(rec);
        }
    }

    fn count_drop_reason(&self, reason: DropReason) {
        self.telemetry
            .counter_with("netem.drops", &[("reason", reason.label())])
            .inc();
    }

    /// Allocates a fresh packet id (for nodes that originate traffic).
    pub fn alloc_packet_id(&mut self) -> u64 {
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        id
    }

    /// Removes a node's logic entirely — events addressed to it are
    /// discarded from then on. Models a crashed VNF container.
    pub fn kill_node(&mut self, node: NodeId) -> Option<Box<dyn NodeLogic>> {
        let slot = &mut self.nodes[node.0 as usize];
        slot.parked = None;
        slot.logic.take()
    }

    /// Parks a node's logic: events addressed to it are discarded until
    /// [`Sim::resume_node`]. Models a stalled (hung but alive) process.
    /// Returns false if the node is already paused or dead.
    pub fn pause_node(&mut self, node: NodeId) -> bool {
        let slot = &mut self.nodes[node.0 as usize];
        match slot.logic.take() {
            Some(l) => {
                slot.parked = Some(l);
                true
            }
            None => false,
        }
    }

    /// Un-parks a paused node. Returns false if it was not paused (e.g.
    /// it was killed in the meantime).
    pub fn resume_node(&mut self, node: NodeId) -> bool {
        let slot = &mut self.nodes[node.0 as usize];
        match slot.parked.take() {
            Some(l) => {
                slot.logic = Some(l);
                true
            }
            None => false,
        }
    }

    /// True if the node currently has live logic (not killed or paused).
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.nodes[node.0 as usize].logic.is_some()
    }
}

/// The capability surface a node sees while handling an event.
pub struct NodeCtx<'a> {
    sim: &'a mut Sim,
    node: NodeId,
}

impl NodeCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.sim.clock
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Transmits a frame out of `port`.
    pub fn send(&mut self, port: u16, pkt: Packet) {
        self.sim.transmit_from(self.node, port, pkt);
    }

    /// Creates a packet stamped with a fresh id and the current time.
    pub fn new_packet(&mut self, data: Bytes) -> Packet {
        Packet {
            data,
            id: self.sim.alloc_packet_id(),
            born_ns: self.sim.clock.as_ns(),
        }
    }

    /// Arms a timer that fires `delay` from now with `token`.
    pub fn set_timer(&mut self, delay: Time, token: u64) {
        self.sim.set_timer_for(self.node, delay, token);
    }

    /// Sends a message on a control channel this node terminates.
    pub fn ctrl_send(&mut self, conn: CtrlId, msg: Vec<u8>) {
        self.sim.ctrl_send_from(self.node, conn, msg);
    }

    // ------------- flight-recorder capabilities ---------------------
    // Node logic annotates the packet trace with what happened *inside*
    // the node: which flow rule matched, which Click elements ran, why a
    // frame died. The journey reconstructor (escape::flight) correlates
    // these with the kernel's wire records by packet id.

    /// True when packet tracing is enabled — logic can skip building hop
    /// annotations otherwise.
    pub fn tracing(&self) -> bool {
        self.sim.trace.is_some()
    }

    /// Records an in-node processing annotation for a traced packet.
    pub fn trace_hop(&mut self, packet_id: u64, len: usize, port: u16, detail: HopDetail) {
        if let Some(tr) = &mut self.sim.trace {
            let mut rec = TraceRecord::wire(
                self.sim.clock,
                self.node,
                port,
                TraceDir::Hop,
                len,
                packet_id,
            );
            rec.hop = Some(detail);
            tr.record(rec);
        }
    }

    /// Records an in-node drop with a typed reason, counted under
    /// `netem.drops{reason=...}` alongside the kernel's own drops.
    pub fn trace_drop(&mut self, packet_id: u64, len: usize, port: u16, reason: DropReason) {
        self.sim.count_drop_reason(reason);
        if let Some(tr) = &mut self.sim.trace {
            let mut rec = TraceRecord::wire(
                self.sim.clock,
                self.node,
                port,
                TraceDir::Drop,
                len,
                packet_id,
            );
            rec.drop = Some(reason);
            tr.record(rec);
        }
    }

    // ------------- fault-injection capabilities ---------------------
    // Used by the fault injector node (crate::fault): a node dispatched
    // by the kernel may manipulate links and *other* nodes.

    /// Administratively flips a link.
    pub fn set_link_state(&mut self, link: LinkId, state: LinkState) {
        self.sim.set_link_state(link, state);
    }

    /// Changes a link's random loss probability.
    pub fn set_link_loss(&mut self, link: LinkId, loss: f64) {
        self.sim.set_link_loss(link, loss);
    }

    /// Changes a link's propagation delay.
    pub fn set_link_delay(&mut self, link: LinkId, delay: Time) {
        self.sim.set_link_delay(link, delay);
    }

    /// Kills another node (no-op on self: logic is already taken).
    pub fn kill_node(&mut self, node: NodeId) {
        self.sim.kill_node(node);
    }

    /// Pauses another node.
    pub fn pause_node(&mut self, node: NodeId) -> bool {
        self.sim.pause_node(node)
    }

    /// Resumes a paused node.
    pub fn resume_node(&mut self, node: NodeId) -> bool {
        self.sim.resume_node(node)
    }

    /// Increments `faults.injected{kind=...}` in the sim's registry.
    pub fn count_fault(&mut self, kind: &str) {
        self.sim
            .telemetry
            .counter_with("faults.injected", &[("kind", kind)])
            .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;

    /// Echoes every frame back out the port it came in on.
    struct Reflector;
    impl NodeLogic for Reflector {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: u16, pkt: Packet) {
            ctx.send(port, pkt);
        }
    }

    /// Counts frames and remembers arrival times.
    #[derive(Default)]
    struct Counter {
        rx: Vec<(Time, u64)>,
    }
    impl NodeLogic for Counter {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: u16, pkt: Packet) {
            self.rx.push((ctx.now(), pkt.id));
        }
    }

    fn two_node_sim(cfg: LinkConfig) -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new(1);
        let a = sim.add_node("a", 1, Box::new(Reflector));
        let b = sim.add_node("b", 1, Box::new(Counter::default()));
        sim.connect((a, 0), (b, 0), cfg);
        (sim, a, b)
    }

    #[test]
    fn frame_crosses_link_with_correct_latency() {
        let cfg = LinkConfig::lan(); // 1 Gbps, 50 us
        let (mut sim, a, b) = two_node_sim(cfg);
        let id = sim.inject(a, 0, Bytes::from(vec![0u8; 125]), Time::ZERO);
        sim.run(1000);
        let c = sim.node_as::<Counter>(b).unwrap();
        assert_eq!(c.rx.len(), 1);
        // Reflector forwards instantly at t=0; 125 B at 1 Gbps = 1 µs
        // serialization + 50 µs propagation.
        assert_eq!(c.rx[0].0, Time::from_us(51));
        assert_eq!(c.rx[0].1, id);
    }

    #[test]
    fn queueing_adds_serialization_backlog() {
        let cfg = LinkConfig::lan(); // 1 µs per 125 B
        let (mut sim, a, b) = two_node_sim(cfg);
        for _ in 0..3 {
            sim.inject(a, 0, Bytes::from(vec![0u8; 125]), Time::ZERO);
        }
        sim.run(1000);
        let c = sim.node_as::<Counter>(b).unwrap();
        let times: Vec<u64> = c.rx.iter().map(|(t, _)| t.as_us()).collect();
        assert_eq!(times, vec![51, 52, 53]); // 1 µs apart behind one transmitter
    }

    #[test]
    fn full_queue_tail_drops() {
        let cfg = LinkConfig::lan().with_queue(2);
        let (mut sim, a, _b) = two_node_sim(cfg);
        for _ in 0..5 {
            sim.inject(a, 0, Bytes::from(vec![0u8; 1500]), Time::ZERO);
        }
        sim.run(1000);
        assert_eq!(sim.stats().drops_queue, 3);
        assert_eq!(sim.stats().frames_delivered, 5 + 2); // 5 injected + 2 forwarded
    }

    #[test]
    fn lossy_link_drops_statistically() {
        let cfg = LinkConfig::lan().with_loss(0.5);
        let (mut sim, a, _b) = two_node_sim(cfg);
        for i in 0..1000 {
            sim.inject(a, 0, Bytes::from(vec![0u8; 60]), Time::from_us(i * 100));
        }
        sim.run(100_000);
        let lost = sim.stats().drops_loss;
        assert!((300..700).contains(&lost), "loss {lost} wildly off 50%");
    }

    #[test]
    fn link_down_drops_everything() {
        let (mut sim, a, b) = two_node_sim(LinkConfig::lan());
        sim.set_link_state(LinkId(0), LinkState::Down);
        sim.inject(a, 0, Bytes::from(vec![0u8; 60]), Time::ZERO);
        sim.run(100);
        assert_eq!(sim.stats().drops_link_down, 1);
        assert_eq!(sim.node_as::<Counter>(b).unwrap().rx.len(), 0);
    }

    #[test]
    fn identical_seeds_produce_identical_runs() {
        let mk = || {
            let cfg = LinkConfig::lan().with_loss(0.3);
            let (mut sim, a, _) = two_node_sim(cfg);
            for i in 0..200 {
                sim.inject(a, 0, Bytes::from(vec![0u8; 100]), Time::from_us(i * 7));
            }
            sim.run(10_000);
            sim.stats()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn timers_fire_in_order() {
        struct T {
            fired: Vec<u64>,
        }
        impl NodeLogic for T {
            fn on_packet(&mut self, _: &mut NodeCtx<'_>, _: u16, _: Packet) {}
            fn on_timer(&mut self, _: &mut NodeCtx<'_>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut sim = Sim::new(0);
        let n = sim.add_node("t", 0, Box::new(T { fired: vec![] }));
        sim.set_timer_for(n, Time::from_ms(3), 3);
        sim.set_timer_for(n, Time::from_ms(1), 1);
        sim.set_timer_for(n, Time::from_ms(2), 2);
        sim.run(10);
        assert_eq!(sim.node_as::<T>(n).unwrap().fired, vec![1, 2, 3]);
        assert_eq!(sim.stats().timers, 3);
    }

    #[test]
    fn ctrl_channel_delivers_with_latency() {
        struct Recv {
            got: Vec<(Time, Vec<u8>)>,
        }
        impl NodeLogic for Recv {
            fn on_packet(&mut self, _: &mut NodeCtx<'_>, _: u16, _: Packet) {}
            fn on_ctrl(&mut self, ctx: &mut NodeCtx<'_>, _c: CtrlId, msg: Vec<u8>) {
                self.got.push((ctx.now(), msg));
            }
        }
        let mut sim = Sim::new(0);
        let a = sim.add_node("a", 0, Box::new(Recv { got: vec![] }));
        let b = sim.add_node("b", 0, Box::new(Recv { got: vec![] }));
        let c = sim.ctrl_connect(a, b, Time::from_ms(1));
        sim.ctrl_send_from(a, c, b"hello".to_vec());
        sim.run(10);
        let rb = sim.node_as::<Recv>(b).unwrap();
        assert_eq!(rb.got.len(), 1);
        assert_eq!(rb.got[0].0, Time::from_ms(1));
        assert_eq!(rb.got[0].1, b"hello");
        assert!(sim.node_as::<Recv>(a).unwrap().got.is_empty());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, a, _b) = two_node_sim(LinkConfig::lan());
        sim.inject(a, 0, Bytes::from(vec![0u8; 60]), Time::from_ms(10));
        let n = sim.run_until(Time::from_ms(1));
        assert_eq!(n, 0);
        assert_eq!(sim.now(), Time::from_ms(1));
        sim.run_until(Time::from_ms(20));
        assert!(sim.stats().frames_delivered > 0);
    }

    #[test]
    fn killed_node_discards_events() {
        let (mut sim, a, b) = two_node_sim(LinkConfig::lan());
        sim.inject(a, 0, Bytes::from(vec![0u8; 60]), Time::ZERO);
        sim.kill_node(b);
        sim.run(100); // must not panic
        assert!(sim.nodes[b.0 as usize].logic.is_none());
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_a_port_panics() {
        let mut sim = Sim::new(0);
        let a = sim.add_node("a", 1, Box::new(Reflector));
        let b = sim.add_node("b", 2, Box::new(Reflector));
        sim.connect((a, 0), (b, 0), LinkConfig::lan());
        sim.connect((a, 0), (b, 1), LinkConfig::lan());
    }

    #[test]
    fn unwired_port_send_is_silent() {
        let mut sim = Sim::new(0);
        let a = sim.add_node("a", 3, Box::new(Reflector));
        sim.inject(a, 2, Bytes::from(vec![0u8; 60]), Time::ZERO);
        sim.run(10); // Reflector sends back out port 2, which is unwired
        assert_eq!(sim.stats().frames_sent, 0);
        // The frame never hit the wire, but the drop is still attributed.
        let snap = sim.telemetry().snapshot();
        assert_eq!(
            snap.counter("netem.drops", &[("reason", "no_route")]),
            Some(1)
        );
    }

    #[test]
    fn drops_are_counted_per_reason() {
        // Queue overflow.
        let cfg = LinkConfig::lan().with_queue(1);
        let (mut sim, a, _b) = two_node_sim(cfg);
        for _ in 0..3 {
            sim.inject(a, 0, Bytes::from(vec![0u8; 1500]), Time::ZERO);
        }
        sim.run(1000);
        let snap = sim.telemetry().snapshot();
        assert_eq!(
            snap.counter("netem.drops", &[("reason", "queue_full")]),
            Some(2)
        );

        // Link down.
        let (mut sim, a, _b) = two_node_sim(LinkConfig::lan());
        sim.enable_trace(100);
        sim.set_link_state(LinkId(0), LinkState::Down);
        sim.inject(a, 0, Bytes::from(vec![0u8; 60]), Time::ZERO);
        sim.run(100);
        let snap = sim.telemetry().snapshot();
        assert_eq!(
            snap.counter("netem.drops", &[("reason", "link_down")]),
            Some(1)
        );
        // And the trace record carries the typed reason.
        let tr = sim.trace.as_ref().unwrap();
        let drop = tr.records().find(|r| r.dir == TraceDir::Drop).unwrap();
        assert_eq!(drop.drop, Some(DropReason::LinkDown));
    }

    #[test]
    fn node_ctx_hop_and_drop_annotations() {
        /// Annotates every arriving frame with a flow-match hop, then
        /// discards it with a typed reason.
        struct Annotator;
        impl NodeLogic for Annotator {
            fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: u16, pkt: Packet) {
                assert!(ctx.tracing());
                ctx.trace_hop(
                    pkt.id,
                    pkt.len(),
                    port,
                    HopDetail::FlowMatch {
                        dpid: 9,
                        cookie: 77,
                        priority: 500,
                    },
                );
                ctx.trace_drop(pkt.id, pkt.len(), port, DropReason::Filtered);
            }
        }
        let mut sim = Sim::new(0);
        let a = sim.add_node("a", 1, Box::new(Annotator));
        sim.enable_trace(100);
        let id = sim.inject(a, 0, Bytes::from(vec![0u8; 60]), Time::ZERO);
        sim.run(10);
        let tr = sim.trace.as_ref().unwrap();
        let recs: Vec<_> = tr.for_packet(id).collect();
        assert_eq!(recs.len(), 3); // Rx, Hop, Drop
        assert_eq!(recs[1].dir, TraceDir::Hop);
        assert_eq!(
            recs[1].hop,
            Some(HopDetail::FlowMatch {
                dpid: 9,
                cookie: 77,
                priority: 500
            })
        );
        assert_eq!(recs[2].drop, Some(DropReason::Filtered));
        let snap = sim.telemetry().snapshot();
        assert_eq!(
            snap.counter("netem.drops", &[("reason", "filtered")]),
            Some(1)
        );
    }

    #[test]
    fn telemetry_registry_sees_kernel_counters() {
        let reg = escape_telemetry::Registry::new();
        let mut sim = Sim::with_registry(1, reg.clone());
        let a = sim.add_node("a", 1, Box::new(Reflector));
        let b = sim.add_node("b", 1, Box::new(Counter::default()));
        sim.connect((a, 0), (b, 0), LinkConfig::lan().with_queue(2));
        for _ in 0..5 {
            sim.inject(a, 0, Bytes::from(vec![0u8; 1500]), Time::ZERO);
        }
        sim.run(1000);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("netem.drops.queue", &[]), Some(3));
        assert_eq!(
            snap.counter("netem.link_drops", &[("link", "a-b")]),
            Some(3)
        );
        assert_eq!(snap.counter("netem.events", &[]), Some(sim.stats().events));
        assert!(snap.gauge("netem.queued_frames.max", &[]).unwrap() >= 1);
        assert_eq!(
            snap.gauge("netem.queued_frames", &[]),
            Some(0),
            "queues drained"
        );
    }

    /// Re-broadcasts every frame out all ports except the ingress.
    struct Fan;
    impl NodeLogic for Fan {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: u16, pkt: Packet) {
            for p in 0..4u16 {
                if p != port {
                    ctx.send(p, pkt.clone());
                }
            }
        }
    }

    /// The same-timestamp fast lane must be invisible: a fan-out
    /// broadcast workload over zero-latency links (every frame cascades
    /// through a same-timestamp cohort) yields identical stats, trace
    /// and delivery times with batching on and with every event forced
    /// through the heap one at a time — across seeds, with lossy links
    /// exercising the shared RNG draw order.
    #[test]
    fn same_timestamp_batching_matches_strict_heap() {
        fn run(seed: u64, strict: bool) -> (SimStats, Vec<String>, Vec<(Time, u64)>) {
            let mut sim = Sim::new(seed);
            sim.set_strict_heap(strict);
            sim.enable_trace(100_000);
            let root = sim.add_node("root", 4, Box::new(Fan));
            let mut sinks = Vec::new();
            for i in 0..4u16 {
                let mid = sim.add_node(format!("m{i}"), 4, Box::new(Fan));
                sim.connect((root, i), (mid, 0), LinkConfig::ideal().with_loss(0.05));
                for j in 0..3u16 {
                    let s = sim.add_node(format!("s{i}{j}"), 1, Box::new(Counter::default()));
                    sim.connect((mid, j + 1), (s, 0), LinkConfig::ideal().with_loss(0.05));
                    sinks.push(s);
                }
            }
            for k in 0..20u64 {
                sim.inject(root, 0, Bytes::from(vec![0u8; 64]), Time::from_us(k * 5));
            }
            sim.run(1_000_000);
            let trace = sim
                .trace
                .as_ref()
                .unwrap()
                .records()
                .map(|r| format!("{r:?}"))
                .collect();
            let rx = sinks
                .iter()
                .flat_map(|s| sim.node_as::<Counter>(*s).unwrap().rx.clone())
                .collect();
            (sim.stats(), trace, rx)
        }
        for seed in [1u64, 7, 42] {
            let batched = run(seed, false);
            let reference = run(seed, true);
            assert_eq!(batched.0, reference.0, "stats diverged at seed {seed}");
            assert_eq!(batched.1, reference.1, "trace diverged at seed {seed}");
            assert_eq!(batched.2, reference.2, "rx diverged at seed {seed}");
        }
    }

    /// `peek_time` and `run_until` see events parked in the fast lane.
    #[test]
    fn peek_time_sees_due_now_cohort() {
        struct Arm;
        impl NodeLogic for Arm {
            fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _: u16, _: Packet) {
                // Zero-delay timer lands in the same-timestamp cohort.
                ctx.set_timer(Time::ZERO, 9);
            }
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _: u64) {
                assert_eq!(ctx.now(), Time::from_ms(5));
            }
        }
        let mut sim = Sim::new(0);
        let a = sim.add_node("a", 1, Box::new(Arm));
        sim.inject(a, 0, Bytes::from(vec![0u8; 10]), Time::from_ms(5));
        sim.step();
        assert_eq!(sim.peek_time(), Some(Time::from_ms(5)));
        assert_eq!(sim.run_until(Time::from_ms(5)), 1);
        assert_eq!(sim.stats().timers, 1);
    }

    /// Flipping strict mode mid-run migrates the in-flight cohort onto
    /// the heap without losing or reordering events.
    #[test]
    fn strict_heap_toggle_preserves_pending_cohort() {
        struct Arm;
        impl NodeLogic for Arm {
            fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _: u16, _: Packet) {
                ctx.set_timer(Time::ZERO, 1);
                ctx.set_timer(Time::ZERO, 2);
            }
        }
        let mut sim = Sim::new(0);
        let a = sim.add_node("a", 1, Box::new(Arm));
        sim.inject(a, 0, Bytes::from(vec![0u8; 10]), Time::ZERO);
        sim.step(); // both timers now parked in the fast lane
        sim.set_strict_heap(true);
        assert_eq!(sim.run(10), 2);
        assert_eq!(sim.stats().timers, 2);
    }

    #[test]
    fn trace_records_tx_rx() {
        let (mut sim, a, _b) = two_node_sim(LinkConfig::lan());
        sim.enable_trace(100);
        sim.inject(a, 0, Bytes::from(vec![0u8; 60]), Time::ZERO);
        sim.run(100);
        let tr = sim.trace.as_ref().unwrap();
        assert!(tr.count(TraceDir::Rx) >= 2); // at a (inject) and at b
        assert_eq!(tr.count(TraceDir::Tx), 1); // reflector's forward
    }
}
