//! Packet tracing — the emulator's stand-in for pcap dumps, and the raw
//! feed of the flight recorder (`escape::flight`).
//!
//! Three record kinds share one stream, ordered by virtual time:
//! - `Tx`/`Rx`: wire events recorded by the kernel on transmit/arrive.
//! - `Drop`: a frame lost, with a typed [`DropReason`] naming why.
//! - `Hop`: an in-node annotation ([`HopDetail`]) recorded by node logic
//!   — which flow rule a switch matched, which Click elements a VNF ran
//!   the frame through.

use crate::sim::NodeId;
use crate::time::Time;
use bytes::Bytes;
use std::collections::VecDeque;

/// Direction of a traced frame relative to the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDir {
    Tx,
    Rx,
    Drop,
    /// In-node processing annotation (no frame movement).
    Hop,
}

impl std::fmt::Display for TraceDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceDir::Tx => "tx",
            TraceDir::Rx => "rx",
            TraceDir::Drop => "drop",
            TraceDir::Hop => "hop",
        })
    }
}

/// Why a frame was dropped. Carried on `Drop` records and counted
/// per-reason under `netem.drops{reason=...}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Random loss on a link.
    RandomLoss,
    /// The link was administratively down.
    LinkDown,
    /// The egress queue was at capacity (tail drop).
    QueueFull,
    /// No forwarding state: unwired port or unbound VNF device.
    NoRoute,
    /// Flow-table miss with nowhere to punt (no controller, or the
    /// buffered packet was evicted before a verdict arrived).
    TableMissPolicy,
    /// The VNF process was not running.
    VnfDown,
    /// A Click element intentionally discarded the frame (e.g. a
    /// firewall deny rule).
    Filtered,
    /// The frame could not be parsed into a flow key.
    Malformed,
}

impl DropReason {
    /// Stable label used as the telemetry `reason` tag.
    pub fn label(&self) -> &'static str {
        match self {
            DropReason::RandomLoss => "random_loss",
            DropReason::LinkDown => "link_down",
            DropReason::QueueFull => "queue_full",
            DropReason::NoRoute => "no_route",
            DropReason::TableMissPolicy => "table_miss_policy",
            DropReason::VnfDown => "vnf_down",
            DropReason::Filtered => "filtered",
            DropReason::Malformed => "malformed",
        }
    }

    /// All reasons, for exhaustive reporting.
    pub fn all() -> &'static [DropReason] {
        &[
            DropReason::RandomLoss,
            DropReason::LinkDown,
            DropReason::QueueFull,
            DropReason::NoRoute,
            DropReason::TableMissPolicy,
            DropReason::VnfDown,
            DropReason::Filtered,
            DropReason::Malformed,
        ]
    }
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What happened to a frame inside a node — recorded as `Hop` records by
/// the node logic itself (switch, VNF container).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HopDetail {
    /// A switch matched a flow entry; the cookie is the steering chain
    /// identity.
    FlowMatch {
        dpid: u64,
        cookie: u64,
        priority: u16,
    },
    /// A switch missed its flow table and punted the frame to the
    /// controller as a packet-in.
    TableMiss { dpid: u64 },
    /// A VNF ran the frame through these Click elements, in traversal
    /// order.
    VnfPath { vnf: String, elements: Vec<String> },
}

impl std::fmt::Display for HopDetail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HopDetail::FlowMatch {
                dpid,
                cookie,
                priority,
            } => {
                write!(f, "flow-match dpid={dpid} cookie={cookie} prio={priority}")
            }
            HopDetail::TableMiss { dpid } => write!(f, "table-miss dpid={dpid}"),
            HopDetail::VnfPath { vnf, elements } => {
                write!(f, "vnf {vnf} [{}]", elements.join(" -> "))
            }
        }
    }
}

/// One traced event.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    pub time: Time,
    pub node: NodeId,
    pub port: u16,
    pub dir: TraceDir,
    pub len: usize,
    pub packet_id: u64,
    /// Raw frame bytes, kept only when payload capture is enabled.
    pub data: Option<Bytes>,
    /// Why the frame was dropped (`dir == Drop`).
    pub drop: Option<DropReason>,
    /// In-node processing detail (`dir == Hop`).
    pub hop: Option<HopDetail>,
}

impl TraceRecord {
    /// A bare wire event; `Drop`/`Hop` details are attached by the
    /// kernel/node helpers.
    pub fn wire(time: Time, node: NodeId, port: u16, dir: TraceDir, len: usize, id: u64) -> Self {
        TraceRecord {
            time,
            node,
            port,
            dir,
            len,
            packet_id: id,
            data: None,
            drop: None,
            hop: None,
        }
    }
}

/// An in-memory packet trace. Recording every frame in a large run is
/// expensive, so tracing is opt-in per [`crate::Sim`]. At capacity the
/// trace behaves as a ring buffer: the oldest records are evicted so the
/// tail of the run is always retained.
#[derive(Debug, Default)]
pub struct Trace {
    records: VecDeque<TraceRecord>,
    /// Maximum records kept.
    cap: usize,
    /// Records evicted from the front once the cap was reached.
    evicted: u64,
    /// When true, frame bytes are kept so the trace can be exported as a
    /// real pcap file.
    pub capture_payloads: bool,
}

impl Trace {
    /// A trace bounded to `cap` records.
    pub fn with_capacity(cap: usize) -> Self {
        Trace {
            records: VecDeque::new(),
            cap,
            evicted: 0,
            capture_payloads: false,
        }
    }

    /// Records an event, evicting the oldest record once the cap is
    /// reached (ring-buffer semantics).
    pub fn record(&mut self, rec: TraceRecord) {
        if self.cap == 0 {
            return;
        }
        if self.records.len() >= self.cap {
            self.records.pop_front();
            self.evicted += 1;
        }
        self.records.push_back(rec);
    }

    /// All retained records in time order.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The `i`-th retained record (0 = oldest).
    pub fn get(&self, i: usize) -> Option<&TraceRecord> {
        self.records.get(i)
    }

    /// Records evicted because the capacity was reached.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Records matching a node.
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.node == node)
    }

    /// Records matching a packet id, in time order.
    pub fn for_packet(&self, packet_id: u64) -> impl Iterator<Item = &TraceRecord> {
        self.records
            .iter()
            .filter(move |r| r.packet_id == packet_id)
    }

    /// Counts records with the given direction.
    pub fn count(&self, dir: TraceDir) -> usize {
        self.records.iter().filter(|r| r.dir == dir).count()
    }

    /// Serializes the trace as a classic libpcap file (magic 0xa1b2c3d4,
    /// microsecond timestamps, Ethernet link type) — open it in Wireshark.
    /// Records without captured bytes (payload capture off, or drop
    /// records) are skipped.
    pub fn to_pcap(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.records.len() * 80);
        // Global header.
        out.extend_from_slice(&0xa1b2_c3d4u32.to_le_bytes()); // magic
        out.extend_from_slice(&2u16.to_le_bytes()); // version major
        out.extend_from_slice(&4u16.to_le_bytes()); // version minor
        out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        out.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
        out.extend_from_slice(&1u32.to_le_bytes()); // linktype: Ethernet
        for r in &self.records {
            let Some(data) = &r.data else { continue };
            let secs = (r.time.as_ns() / 1_000_000_000) as u32;
            let usecs = ((r.time.as_ns() % 1_000_000_000) / 1_000) as u32;
            out.extend_from_slice(&secs.to_le_bytes());
            out.extend_from_slice(&usecs.to_le_bytes());
            out.extend_from_slice(&(data.len() as u32).to_le_bytes());
            out.extend_from_slice(&(data.len() as u32).to_le_bytes());
            out.extend_from_slice(data);
        }
        out
    }

    /// Renders the trace as a tcpdump-ish text listing.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!(
                "{:>14} node{} port{} {} len={} id={}",
                r.time.to_string(),
                r.node.0,
                r.port,
                r.dir,
                r.len,
                r.packet_id
            ));
            if let Some(reason) = r.drop {
                out.push_str(&format!(" reason={reason}"));
            }
            if let Some(hop) = &r.hop {
                out.push_str(&format!(" {hop}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, dir: TraceDir) -> TraceRecord {
        TraceRecord::wire(Time::from_ns(t), NodeId(1), 0, dir, 60, t)
    }

    #[test]
    fn capacity_evicts_oldest_not_newest() {
        let mut tr = Trace::with_capacity(2);
        tr.record(rec(1, TraceDir::Tx));
        tr.record(rec(2, TraceDir::Rx));
        tr.record(rec(3, TraceDir::Rx));
        assert_eq!(tr.len(), 2);
        // Ring buffer: record 1 was evicted, 2 and 3 retained.
        assert_eq!(tr.get(0).unwrap().time.as_ns(), 2);
        assert_eq!(tr.get(1).unwrap().time.as_ns(), 3);
        assert_eq!(tr.evicted(), 1);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut tr = Trace::with_capacity(0);
        tr.record(rec(1, TraceDir::Tx));
        assert!(tr.is_empty());
        assert_eq!(tr.evicted(), 0);
    }

    #[test]
    fn counting_and_filtering() {
        let mut tr = Trace::with_capacity(100);
        tr.record(rec(1, TraceDir::Tx));
        tr.record(rec(2, TraceDir::Drop));
        tr.record(rec(3, TraceDir::Drop));
        assert_eq!(tr.count(TraceDir::Drop), 2);
        assert_eq!(tr.count(TraceDir::Tx), 1);
        assert_eq!(tr.for_node(NodeId(1)).count(), 3);
        assert_eq!(tr.for_node(NodeId(2)).count(), 0);
        assert_eq!(tr.for_packet(2).count(), 1);
    }

    #[test]
    fn drop_reason_display_matches_stable_label() {
        // The Display string doubles as the telemetry `reason` tag, so it
        // must stay a stable snake_case identifier for every variant.
        let want = [
            (DropReason::RandomLoss, "random_loss"),
            (DropReason::LinkDown, "link_down"),
            (DropReason::QueueFull, "queue_full"),
            (DropReason::NoRoute, "no_route"),
            (DropReason::TableMissPolicy, "table_miss_policy"),
            (DropReason::VnfDown, "vnf_down"),
            (DropReason::Filtered, "filtered"),
            (DropReason::Malformed, "malformed"),
        ];
        assert_eq!(DropReason::all().len(), want.len());
        for (reason, label) in want {
            assert_eq!(reason.to_string(), label);
            assert_eq!(reason.label(), label);
        }
    }

    #[test]
    fn pcap_export_is_well_formed() {
        let mut tr = Trace::with_capacity(10);
        tr.capture_payloads = true;
        let mut r = rec(1_500_000, TraceDir::Rx); // t = 1.5 ms
        r.data = Some(Bytes::from_static(&[0xaa; 60]));
        tr.record(r);
        let mut r2 = rec(2, TraceDir::Tx);
        r2.data = None; // skipped in export
        tr.record(r2);
        let pcap = tr.to_pcap();
        // Global header 24 B + one record header 16 B + 60 B frame.
        assert_eq!(pcap.len(), 24 + 16 + 60);
        assert_eq!(&pcap[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(&pcap[20..24], &1u32.to_le_bytes()); // Ethernet
                                                        // Timestamp: 0 s, 1500 µs.
        assert_eq!(&pcap[24..28], &0u32.to_le_bytes());
        assert_eq!(&pcap[28..32], &1500u32.to_le_bytes());
        // Lengths.
        assert_eq!(&pcap[32..36], &60u32.to_le_bytes());
    }

    #[test]
    fn dump_contains_direction_id_and_reason() {
        let mut tr = Trace::with_capacity(10);
        tr.record(rec(42, TraceDir::Tx));
        let mut d = rec(43, TraceDir::Drop);
        d.drop = Some(DropReason::LinkDown);
        tr.record(d);
        let mut h = rec(44, TraceDir::Hop);
        h.hop = Some(HopDetail::FlowMatch {
            dpid: 7,
            cookie: 3,
            priority: 500,
        });
        tr.record(h);
        let text = tr.dump();
        assert!(text.contains("tx"));
        assert!(text.contains("id=42"));
        assert!(text.contains("reason=link_down"));
        assert!(text.contains("cookie=3"));
    }

    #[test]
    fn drop_reason_labels_are_stable_and_unique() {
        let labels: Vec<&str> = DropReason::all().iter().map(|r| r.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "duplicate labels: {labels:?}");
        assert!(labels.contains(&"link_down"));
        assert!(labels.contains(&"random_loss"));
    }
}
