//! Packet tracing — the emulator's stand-in for pcap dumps.

use crate::sim::NodeId;
use crate::time::Time;
use bytes::Bytes;

/// Direction of a traced frame relative to the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDir {
    Tx,
    Rx,
    Drop,
}

impl std::fmt::Display for TraceDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceDir::Tx => "tx",
            TraceDir::Rx => "rx",
            TraceDir::Drop => "drop",
        })
    }
}

/// One traced event.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    pub time: Time,
    pub node: NodeId,
    pub port: u16,
    pub dir: TraceDir,
    pub len: usize,
    pub packet_id: u64,
    /// Raw frame bytes, kept only when payload capture is enabled.
    pub data: Option<Bytes>,
}

/// An in-memory packet trace. Recording every frame in a large run is
/// expensive, so tracing is opt-in per [`crate::Sim`].
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    /// Maximum records kept; older records are retained, new ones dropped.
    cap: usize,
    /// When true, frame bytes are kept so the trace can be exported as a
    /// real pcap file.
    pub capture_payloads: bool,
}

impl Trace {
    /// A trace bounded to `cap` records.
    pub fn with_capacity(cap: usize) -> Self {
        Trace {
            records: Vec::new(),
            cap,
            capture_payloads: false,
        }
    }

    /// Records an event (no-op once the cap is reached).
    pub fn record(&mut self, rec: TraceRecord) {
        if self.records.len() < self.cap {
            self.records.push(rec);
        }
    }

    /// All records in time order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records matching a node.
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.node == node)
    }

    /// Counts records with the given direction.
    pub fn count(&self, dir: TraceDir) -> usize {
        self.records.iter().filter(|r| r.dir == dir).count()
    }

    /// Serializes the trace as a classic libpcap file (magic 0xa1b2c3d4,
    /// microsecond timestamps, Ethernet link type) — open it in Wireshark.
    /// Records without captured bytes (payload capture off, or drop
    /// records) are skipped.
    pub fn to_pcap(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.records.len() * 80);
        // Global header.
        out.extend_from_slice(&0xa1b2_c3d4u32.to_le_bytes()); // magic
        out.extend_from_slice(&2u16.to_le_bytes()); // version major
        out.extend_from_slice(&4u16.to_le_bytes()); // version minor
        out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        out.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
        out.extend_from_slice(&1u32.to_le_bytes()); // linktype: Ethernet
        for r in &self.records {
            let Some(data) = &r.data else { continue };
            let secs = (r.time.as_ns() / 1_000_000_000) as u32;
            let usecs = ((r.time.as_ns() % 1_000_000_000) / 1_000) as u32;
            out.extend_from_slice(&secs.to_le_bytes());
            out.extend_from_slice(&usecs.to_le_bytes());
            out.extend_from_slice(&(data.len() as u32).to_le_bytes());
            out.extend_from_slice(&(data.len() as u32).to_le_bytes());
            out.extend_from_slice(data);
        }
        out
    }

    /// Renders the trace as a tcpdump-ish text listing.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!(
                "{:>14} node{} port{} {} len={} id={}\n",
                r.time.to_string(),
                r.node.0,
                r.port,
                r.dir,
                r.len,
                r.packet_id
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, dir: TraceDir) -> TraceRecord {
        TraceRecord {
            time: Time::from_ns(t),
            node: NodeId(1),
            port: 0,
            dir,
            len: 60,
            packet_id: t,
            data: None,
        }
    }

    #[test]
    fn records_respect_capacity() {
        let mut tr = Trace::with_capacity(2);
        tr.record(rec(1, TraceDir::Tx));
        tr.record(rec(2, TraceDir::Rx));
        tr.record(rec(3, TraceDir::Rx));
        assert_eq!(tr.records().len(), 2);
        assert_eq!(tr.records()[1].time.as_ns(), 2);
    }

    #[test]
    fn counting_and_filtering() {
        let mut tr = Trace::with_capacity(100);
        tr.record(rec(1, TraceDir::Tx));
        tr.record(rec(2, TraceDir::Drop));
        tr.record(rec(3, TraceDir::Drop));
        assert_eq!(tr.count(TraceDir::Drop), 2);
        assert_eq!(tr.count(TraceDir::Tx), 1);
        assert_eq!(tr.for_node(NodeId(1)).count(), 3);
        assert_eq!(tr.for_node(NodeId(2)).count(), 0);
    }

    #[test]
    fn pcap_export_is_well_formed() {
        let mut tr = Trace::with_capacity(10);
        tr.capture_payloads = true;
        let mut r = rec(1_500_000, TraceDir::Rx); // t = 1.5 ms
        r.data = Some(Bytes::from_static(&[0xaa; 60]));
        tr.record(r);
        let mut r2 = rec(2, TraceDir::Tx);
        r2.data = None; // skipped in export
        tr.record(r2);
        let pcap = tr.to_pcap();
        // Global header 24 B + one record header 16 B + 60 B frame.
        assert_eq!(pcap.len(), 24 + 16 + 60);
        assert_eq!(&pcap[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(&pcap[20..24], &1u32.to_le_bytes()); // Ethernet
                                                        // Timestamp: 0 s, 1500 µs.
        assert_eq!(&pcap[24..28], &0u32.to_le_bytes());
        assert_eq!(&pcap[28..32], &1500u32.to_le_bytes());
        // Lengths.
        assert_eq!(&pcap[32..36], &60u32.to_le_bytes());
    }

    #[test]
    fn dump_contains_direction_and_id() {
        let mut tr = Trace::with_capacity(10);
        tr.record(rec(42, TraceDir::Tx));
        let text = tr.dump();
        assert!(text.contains("tx"));
        assert!(text.contains("id=42"));
    }
}
