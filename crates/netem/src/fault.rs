//! Deterministic, virtual-clock-driven fault injection.
//!
//! A [`FaultPlan`] is a named script of timed fault events — link flaps,
//! loss/delay spikes, VNF container crashes and agent stalls — addressed
//! by *node name* so plans can be written as JSON files before a topology
//! is instantiated. [`FaultInjector::install`] resolves the plan against a
//! live [`Sim`], arms one virtual timer per event and applies each fault
//! exactly when its timer fires. Because the injector is an ordinary
//! [`NodeLogic`] driven by the event queue, fault application is totally
//! ordered with every other event: two runs with the same seed and plan
//! produce byte-identical histories.
//!
//! Every applied fault increments `faults.injected{kind=...}` in the
//! simulation's telemetry registry and is appended to the injector's
//! record log, which a recovery layer can drain (see
//! [`FaultInjector::take_records`]) to react in (virtual) real time.

use crate::link::{LinkId, LinkState};
use crate::sim::{NodeCtx, NodeId, NodeLogic, Sim};
use crate::time::Time;
use escape_json::Value;

/// One kind of fault, addressed by node names (resolved at install time).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Administratively downs every link between `a` and `b`.
    LinkDown { a: String, b: String },
    /// Brings the `a`-`b` links back up.
    LinkUp { a: String, b: String },
    /// Sets random loss on the `a`-`b` links to `loss` (0..=1).
    LossSpike { a: String, b: String, loss: f64 },
    /// Restores the `a`-`b` links' loss to its pre-plan value.
    LossClear { a: String, b: String },
    /// Sets propagation delay on the `a`-`b` links to `delay_us`.
    DelaySpike { a: String, b: String, delay_us: u64 },
    /// Restores the `a`-`b` links' delay to its pre-plan value.
    DelayClear { a: String, b: String },
    /// Kills the named node permanently (crashed VNF container).
    VnfCrash { node: String },
    /// Pauses the named node for `for_us`, then resumes it (a hung
    /// process: events addressed to it meanwhile are discarded).
    VnfStall { node: String, for_us: u64 },
    /// Resumes a previously stalled node (also emitted automatically at
    /// the end of a [`FaultKind::VnfStall`]).
    VnfResume { node: String },
}

impl FaultKind {
    /// Stable lowercase tag, used in JSON and as the telemetry label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LinkDown { .. } => "link_down",
            FaultKind::LinkUp { .. } => "link_up",
            FaultKind::LossSpike { .. } => "loss_spike",
            FaultKind::LossClear { .. } => "loss_clear",
            FaultKind::DelaySpike { .. } => "delay_spike",
            FaultKind::DelayClear { .. } => "delay_clear",
            FaultKind::VnfCrash { .. } => "vnf_crash",
            FaultKind::VnfStall { .. } => "vnf_stall",
            FaultKind::VnfResume { .. } => "vnf_resume",
        }
    }

    /// Human-readable target ("a-b" for links, the node name otherwise).
    pub fn target(&self) -> String {
        match self {
            FaultKind::LinkDown { a, b }
            | FaultKind::LinkUp { a, b }
            | FaultKind::LossSpike { a, b, .. }
            | FaultKind::LossClear { a, b }
            | FaultKind::DelaySpike { a, b, .. }
            | FaultKind::DelayClear { a, b } => format!("{a}-{b}"),
            FaultKind::VnfCrash { node }
            | FaultKind::VnfStall { node, .. }
            | FaultKind::VnfResume { node } => node.clone(),
        }
    }

    /// The link endpoints this fault targets, if it targets a link.
    pub fn link_endpoints(&self) -> Option<(&str, &str)> {
        match self {
            FaultKind::LinkDown { a, b }
            | FaultKind::LinkUp { a, b }
            | FaultKind::LossSpike { a, b, .. }
            | FaultKind::LossClear { a, b }
            | FaultKind::DelaySpike { a, b, .. }
            | FaultKind::DelayClear { a, b } => Some((a, b)),
            _ => None,
        }
    }
}

/// One scheduled fault. `at_us` is virtual microseconds after the plan is
/// installed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    pub at_us: u64,
    pub kind: FaultKind,
}

/// A named, scriptable fault schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    pub name: String,
    pub events: Vec<FaultEvent>,
}

fn str_field(v: &Value, key: &str, ctx: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: missing or non-string field {key:?}"))
}

fn u64_field(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer field {key:?}"))
}

fn f64_field(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{ctx}: missing or non-numeric field {key:?}"))
}

impl FaultPlan {
    /// An empty plan.
    pub fn new(name: impl Into<String>) -> FaultPlan {
        FaultPlan {
            name: name.into(),
            events: Vec::new(),
        }
    }

    /// Builder: schedules `kind` at `ms` virtual milliseconds.
    pub fn at_ms(self, ms: u64, kind: FaultKind) -> FaultPlan {
        self.at_us(ms * 1_000, kind)
    }

    /// Builder: schedules `kind` at `us` virtual microseconds.
    pub fn at_us(mut self, us: u64, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at_us: us, kind });
        self
    }

    /// Serializes the plan to pretty JSON.
    pub fn to_json(&self) -> String {
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|ev| {
                let base = Value::obj()
                    .set("at_us", ev.at_us)
                    .set("kind", ev.kind.label());
                match &ev.kind {
                    FaultKind::LinkDown { a, b }
                    | FaultKind::LinkUp { a, b }
                    | FaultKind::LossClear { a, b }
                    | FaultKind::DelayClear { a, b } => {
                        base.set("a", a.as_str()).set("b", b.as_str())
                    }
                    FaultKind::LossSpike { a, b, loss } => base
                        .set("a", a.as_str())
                        .set("b", b.as_str())
                        .set("loss", *loss),
                    FaultKind::DelaySpike { a, b, delay_us } => base
                        .set("a", a.as_str())
                        .set("b", b.as_str())
                        .set("delay_us", *delay_us),
                    FaultKind::VnfCrash { node } | FaultKind::VnfResume { node } => {
                        base.set("node", node.as_str())
                    }
                    FaultKind::VnfStall { node, for_us } => {
                        base.set("node", node.as_str()).set("for_us", *for_us)
                    }
                }
            })
            .collect();
        Value::obj()
            .set("name", self.name.as_str())
            .set("events", Value::Arr(events))
            .to_string_pretty()
    }

    /// Parses a plan from JSON. Errors name the offending field.
    pub fn from_json(src: &str) -> Result<FaultPlan, String> {
        let v = Value::parse(src)?;
        let name = str_field(&v, "name", "fault plan")?;
        let events_v = v
            .get("events")
            .and_then(Value::as_arr)
            .ok_or_else(|| "fault plan: missing or non-array field \"events\"".to_string())?;
        let mut events = Vec::new();
        for (i, ev) in events_v.iter().enumerate() {
            let ctx = format!("events[{i}]");
            let at_us = u64_field(ev, "at_us", &ctx)?;
            let tag = str_field(ev, "kind", &ctx)?;
            let link = || -> Result<(String, String), String> {
                Ok((str_field(ev, "a", &ctx)?, str_field(ev, "b", &ctx)?))
            };
            let kind = match tag.as_str() {
                "link_down" => {
                    let (a, b) = link()?;
                    FaultKind::LinkDown { a, b }
                }
                "link_up" => {
                    let (a, b) = link()?;
                    FaultKind::LinkUp { a, b }
                }
                "loss_spike" => {
                    let (a, b) = link()?;
                    let loss = f64_field(ev, "loss", &ctx)?;
                    if !(0.0..=1.0).contains(&loss) {
                        return Err(format!("{ctx}: field \"loss\" must be within 0..=1"));
                    }
                    FaultKind::LossSpike { a, b, loss }
                }
                "loss_clear" => {
                    let (a, b) = link()?;
                    FaultKind::LossClear { a, b }
                }
                "delay_spike" => {
                    let (a, b) = link()?;
                    let delay_us = u64_field(ev, "delay_us", &ctx)?;
                    FaultKind::DelaySpike { a, b, delay_us }
                }
                "delay_clear" => {
                    let (a, b) = link()?;
                    FaultKind::DelayClear { a, b }
                }
                "vnf_crash" => FaultKind::VnfCrash {
                    node: str_field(ev, "node", &ctx)?,
                },
                "vnf_stall" => FaultKind::VnfStall {
                    node: str_field(ev, "node", &ctx)?,
                    for_us: u64_field(ev, "for_us", &ctx)?,
                },
                "vnf_resume" => FaultKind::VnfResume {
                    node: str_field(ev, "node", &ctx)?,
                },
                other => return Err(format!("{ctx}: unknown value {other:?} in field \"kind\"")),
            };
            events.push(FaultEvent { at_us, kind });
        }
        Ok(FaultPlan { name, events })
    }
}

/// A fault plan that references entities missing from the simulation it
/// is installed into. Typed so callers can name the exact offender
/// (plan, event index, entity) instead of string-matching diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlanError {
    /// `events[index]` targets a node name absent from the simulation.
    UnknownNode {
        plan: String,
        index: usize,
        node: String,
    },
    /// `events[index]` targets a link with no instance between `a`-`b`.
    UnknownLink {
        plan: String,
        index: usize,
        a: String,
        b: String,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::UnknownNode { plan, index, node } => {
                write!(
                    f,
                    "plan {plan:?} events[{index}]: no node {node:?} in the simulation"
                )
            }
            FaultPlanError::UnknownLink { plan, index, a, b } => {
                write!(
                    f,
                    "plan {plan:?} events[{index}]: no link {a}-{b} in the simulation"
                )
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// One applied fault, in plan vocabulary (names, not resolved ids).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Virtual time the fault was applied.
    pub at: Time,
    pub kind: FaultKind,
}

impl std::fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}ns] fault {} {}",
            self.at.as_ns(),
            self.kind.label(),
            self.kind.target()
        )
    }
}

/// A fault resolved against a live sim: ids instead of names, originals
/// captured for the restore variants.
enum ResolvedOp {
    SetState(Vec<LinkId>, LinkState),
    SetLoss(Vec<(LinkId, f64)>),
    SetDelay(Vec<(LinkId, Time)>),
    Kill(NodeId),
    Pause(NodeId),
    Resume(NodeId),
}

/// The injector node: a [`NodeLogic`] whose only inputs are its own
/// timers, one per scheduled fault.
pub struct FaultInjector {
    plan_name: String,
    ops: Vec<(FaultKind, ResolvedOp)>,
    records: Vec<FaultRecord>,
    applied: u64,
}

impl FaultInjector {
    /// Resolves `plan` against `sim` (by node name), adds the injector
    /// node and arms its timers. Event times are relative to now. Fails
    /// with a typed [`FaultPlanError`] naming the exact offending event
    /// and entity if the plan references unknown nodes or links.
    pub fn install(sim: &mut Sim, plan: &FaultPlan) -> Result<NodeId, FaultPlanError> {
        let mut ops: Vec<(Time, FaultKind, ResolvedOp)> = Vec::new();
        let links_of =
            |sim: &Sim, a: &str, b: &str, i: usize| -> Result<Vec<LinkId>, FaultPlanError> {
                let links = sim.find_links(a, b);
                if links.is_empty() {
                    return Err(FaultPlanError::UnknownLink {
                        plan: plan.name.clone(),
                        index: i,
                        a: a.to_string(),
                        b: b.to_string(),
                    });
                }
                Ok(links)
            };
        let node_of = |sim: &Sim, name: &str, i: usize| -> Result<NodeId, FaultPlanError> {
            sim.find_node(name)
                .ok_or_else(|| FaultPlanError::UnknownNode {
                    plan: plan.name.clone(),
                    index: i,
                    node: name.to_string(),
                })
        };
        for (i, ev) in plan.events.iter().enumerate() {
            let at = Time::from_us(ev.at_us);
            let op = match &ev.kind {
                FaultKind::LinkDown { a, b } => {
                    ResolvedOp::SetState(links_of(sim, a, b, i)?, LinkState::Down)
                }
                FaultKind::LinkUp { a, b } => {
                    ResolvedOp::SetState(links_of(sim, a, b, i)?, LinkState::Up)
                }
                FaultKind::LossSpike { a, b, loss } => ResolvedOp::SetLoss(
                    links_of(sim, a, b, i)?
                        .into_iter()
                        .map(|l| (l, *loss))
                        .collect(),
                ),
                FaultKind::LossClear { a, b } => ResolvedOp::SetLoss(
                    links_of(sim, a, b, i)?
                        .into_iter()
                        .map(|l| (l, sim.link_loss(l)))
                        .collect(),
                ),
                FaultKind::DelaySpike { a, b, delay_us } => ResolvedOp::SetDelay(
                    links_of(sim, a, b, i)?
                        .into_iter()
                        .map(|l| (l, Time::from_us(*delay_us)))
                        .collect(),
                ),
                FaultKind::DelayClear { a, b } => ResolvedOp::SetDelay(
                    links_of(sim, a, b, i)?
                        .into_iter()
                        .map(|l| (l, sim.link_delay(l)))
                        .collect(),
                ),
                FaultKind::VnfCrash { node } => ResolvedOp::Kill(node_of(sim, node, i)?),
                FaultKind::VnfStall { node, for_us } => {
                    // Expand the stall into pause now + resume later.
                    let id = node_of(sim, node, i)?;
                    ops.push((at, ev.kind.clone(), ResolvedOp::Pause(id)));
                    ops.push((
                        at.add_ns(for_us * 1_000),
                        FaultKind::VnfResume { node: node.clone() },
                        ResolvedOp::Resume(id),
                    ));
                    continue;
                }
                FaultKind::VnfResume { node } => ResolvedOp::Resume(node_of(sim, node, i)?),
            };
            ops.push((at, ev.kind.clone(), op));
        }
        let node = sim.add_node(
            "fault-injector",
            0,
            Box::new(FaultInjector {
                plan_name: plan.name.clone(),
                ops: Vec::new(),
                records: Vec::new(),
                applied: 0,
            }),
        );
        for (token, (at, _, _)) in ops.iter().enumerate() {
            sim.set_timer_for(node, *at, token as u64);
        }
        sim.node_as_mut::<FaultInjector>(node)
            .expect("just installed")
            .ops = ops.into_iter().map(|(_, k, op)| (k, op)).collect();
        Ok(node)
    }

    /// The plan this injector was installed with.
    pub fn plan_name(&self) -> &str {
        &self.plan_name
    }

    /// Faults applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Drains the applied-fault log (records accumulate until taken).
    pub fn take_records(&mut self) -> Vec<FaultRecord> {
        std::mem::take(&mut self.records)
    }
}

impl NodeLogic for FaultInjector {
    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _port: u16, _pkt: escape_packet::Packet) {}

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        let Some((kind, op)) = self.ops.get(token as usize) else {
            return;
        };
        match op {
            ResolvedOp::SetState(links, state) => {
                for &l in links {
                    ctx.set_link_state(l, *state);
                }
            }
            ResolvedOp::SetLoss(pairs) => {
                for &(l, loss) in pairs {
                    ctx.set_link_loss(l, loss);
                }
            }
            ResolvedOp::SetDelay(pairs) => {
                for &(l, d) in pairs {
                    ctx.set_link_delay(l, d);
                }
            }
            ResolvedOp::Kill(n) => {
                ctx.kill_node(*n);
            }
            ResolvedOp::Pause(n) => {
                ctx.pause_node(*n);
            }
            ResolvedOp::Resume(n) => {
                ctx.resume_node(*n);
            }
        }
        let kind = kind.clone();
        ctx.count_fault(kind.label());
        self.applied += 1;
        self.records.push(FaultRecord {
            at: ctx.now(),
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use bytes::Bytes;
    use escape_packet::Packet;

    /// Forwards every injected frame out of port 0 (onto the link).
    struct Pitcher;
    impl NodeLogic for Pitcher {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _: u16, pkt: Packet) {
            ctx.send(0, pkt);
        }
    }

    struct Sink;
    impl NodeLogic for Sink {
        fn on_packet(&mut self, _: &mut NodeCtx<'_>, _: u16, _: Packet) {}
    }

    fn two_nodes() -> (Sim, NodeId, NodeId, LinkId) {
        let mut sim = Sim::new(7);
        let a = sim.add_node("a", 1, Box::new(Pitcher));
        let b = sim.add_node("b", 1, Box::new(Sink));
        let l = sim.connect((a, 0), (b, 0), LinkConfig::lan());
        (sim, a, b, l)
    }

    fn flap_plan() -> FaultPlan {
        FaultPlan::new("flap")
            .at_ms(
                1,
                FaultKind::LinkDown {
                    a: "a".into(),
                    b: "b".into(),
                },
            )
            .at_ms(
                3,
                FaultKind::LinkUp {
                    a: "a".into(),
                    b: "b".into(),
                },
            )
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = flap_plan()
            .at_us(
                4_500,
                FaultKind::LossSpike {
                    a: "a".into(),
                    b: "b".into(),
                    loss: 0.25,
                },
            )
            .at_ms(5, FaultKind::VnfCrash { node: "c0".into() })
            .at_ms(
                6,
                FaultKind::VnfStall {
                    node: "c1".into(),
                    for_us: 2_000,
                },
            );
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(plan, back);
        // Serialize → parse → serialize is the identity on the text too.
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn malformed_plans_name_the_bad_field() {
        let missing_at = r#"{"name":"x","events":[{"kind":"link_down","a":"a","b":"b"}]}"#;
        let err = FaultPlan::from_json(missing_at).unwrap_err();
        assert!(err.contains("events[0]") && err.contains("at_us"), "{err}");

        let bad_kind = r#"{"name":"x","events":[{"at_us":1,"kind":"meteor"}]}"#;
        let err = FaultPlan::from_json(bad_kind).unwrap_err();
        assert!(err.contains("\"kind\"") && err.contains("meteor"), "{err}");

        let bad_loss = r#"{"name":"x","events":[{"at_us":1,"kind":"loss_spike","a":"a","b":"b","loss":"no"}]}"#;
        let err = FaultPlan::from_json(bad_loss).unwrap_err();
        assert!(err.contains("loss"), "{err}");

        let out_of_range =
            r#"{"name":"x","events":[{"at_us":1,"kind":"loss_spike","a":"a","b":"b","loss":1.5}]}"#;
        let err = FaultPlan::from_json(out_of_range).unwrap_err();
        assert!(err.contains("0..=1"), "{err}");
    }

    #[test]
    fn unknown_entities_fail_at_install() {
        let (mut sim, _, _, _) = two_nodes();
        let plan = FaultPlan::new("bad").at_ms(
            1,
            FaultKind::LinkDown {
                a: "a".into(),
                b: "ghost".into(),
            },
        );
        let err = FaultInjector::install(&mut sim, &plan).unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::UnknownLink {
                plan: "bad".into(),
                index: 0,
                a: "a".into(),
                b: "ghost".into(),
            }
        );
        assert!(err.to_string().contains("a-ghost"), "{err}");
        let plan = FaultPlan::new("bad2")
            .at_ms(
                0,
                FaultKind::LinkUp {
                    a: "a".into(),
                    b: "b".into(),
                },
            )
            .at_ms(
                1,
                FaultKind::VnfCrash {
                    node: "nope".into(),
                },
            );
        let err = FaultInjector::install(&mut sim, &plan).unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::UnknownNode {
                plan: "bad2".into(),
                index: 1,
                node: "nope".into(),
            }
        );
        assert!(err.to_string().contains("events[1]"), "{err}");
        // A failed install arms nothing: no injector node was added.
        assert!(sim.find_node("fault-injector").is_none());
    }

    #[test]
    fn link_flap_applies_at_scheduled_times() {
        let (mut sim, a, _, _) = two_nodes();
        let inj = FaultInjector::install(&mut sim, &flap_plan()).unwrap();
        // Frame during the outage is dropped; after recovery it passes.
        sim.inject(a, 0, Bytes::from(vec![0u8; 60]), Time::from_ms(2));
        sim.inject(a, 0, Bytes::from(vec![0u8; 60]), Time::from_ms(4));
        sim.run_until(Time::from_ms(10));
        assert_eq!(sim.stats().drops_link_down, 1);
        assert_eq!(sim.stats().frames_sent, 2);
        let recs = sim
            .node_as_mut::<FaultInjector>(inj)
            .unwrap()
            .take_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].at, Time::from_ms(1));
        assert_eq!(recs[0].kind.label(), "link_down");
        assert_eq!(recs[1].at, Time::from_ms(3));
        let snap = sim.telemetry().snapshot();
        assert_eq!(
            snap.counter("faults.injected", &[("kind", "link_down")]),
            Some(1)
        );
        assert_eq!(
            snap.counter("faults.injected", &[("kind", "link_up")]),
            Some(1)
        );
    }

    #[test]
    fn stall_pauses_then_resumes_a_node() {
        let (mut sim, a, b, _) = two_nodes();
        let plan = FaultPlan::new("stall").at_ms(
            1,
            FaultKind::VnfStall {
                node: "b".into(),
                for_us: 2_000,
            },
        );
        let inj = FaultInjector::install(&mut sim, &plan).unwrap();
        // During the stall, frames to b are discarded (not delivered to
        // logic); after resume, node_as works again.
        sim.inject(a, 0, Bytes::from(vec![0u8; 60]), Time::from_us(1_500));
        sim.run_until(Time::from_ms(10));
        assert!(sim.node_as::<Sink>(b).is_some(), "resumed");
        let recs = sim
            .node_as_mut::<FaultInjector>(inj)
            .unwrap()
            .take_records();
        let labels: Vec<&str> = recs.iter().map(|r| r.kind.label()).collect();
        assert_eq!(labels, vec!["vnf_stall", "vnf_resume"]);
        assert_eq!(recs[1].at, Time::from_ms(3));
    }

    #[test]
    fn same_plan_same_seed_is_deterministic() {
        let run = || {
            let (mut sim, a, _, _) = two_nodes();
            let plan = flap_plan().at_us(
                1_500,
                FaultKind::LossSpike {
                    a: "a".into(),
                    b: "b".into(),
                    loss: 0.5,
                },
            );
            let inj = FaultInjector::install(&mut sim, &plan).unwrap();
            for i in 0..50 {
                sim.inject(a, 0, Bytes::from(vec![0u8; 60]), Time::from_us(i * 100));
            }
            sim.run_until(Time::from_ms(10));
            let recs = sim
                .node_as_mut::<FaultInjector>(inj)
                .unwrap()
                .take_records();
            let log: Vec<String> = recs.iter().map(|r| r.to_string()).collect();
            (log.join("\n"), sim.stats())
        };
        assert_eq!(run(), run());
    }
}
