//! Virtual time.

/// Virtual time in nanoseconds since the start of the run.
///
/// A plain newtype over `u64` with the handful of constructors and
/// accessors the emulator needs. One run covers at most ~584 years of
/// virtual time, which is plenty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// Time zero, the start of the run.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as "never").
    pub const MAX: Time = Time(u64::MAX);

    /// Constructs from nanoseconds.
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_us(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// Value in nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Value in microseconds (truncating).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in milliseconds (truncating).
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Value in seconds as floating point.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition of a duration in nanoseconds.
    pub fn add_ns(self, ns: u64) -> Time {
        Time(self.0.saturating_add(ns))
    }

    /// Saturating difference `self - earlier` in nanoseconds.
    pub fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl std::ops::Add<Time> for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl std::fmt::Display for Time {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_agree() {
        assert_eq!(Time::from_secs(2).as_ns(), 2_000_000_000);
        assert_eq!(Time::from_ms(3).as_us(), 3_000);
        assert_eq!(Time::from_us(5).as_ns(), 5_000);
        assert_eq!(Time::from_secs(1).as_ms(), 1_000);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Time::MAX.add_ns(10), Time::MAX);
        assert_eq!(Time::ZERO.since(Time::from_secs(1)), 0);
        assert_eq!(Time::from_ms(5).since(Time::from_ms(2)), 3_000_000);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Time::from_ns(17).to_string(), "17ns");
        assert_eq!(Time::from_us(2).to_string(), "2.000us");
        assert_eq!(Time::from_ms(2).to_string(), "2.000ms");
        assert_eq!(Time::from_secs(2).to_string(), "2.000000s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time::from_ms(1) < Time::from_secs(1));
        assert!(Time::ZERO < Time::from_ns(1));
    }
}
