//! Property tests for the emulator: time monotonicity, conservation of
//! frames, determinism, serialization math.

use bytes::Bytes;
use escape_netem::{LinkConfig, NodeCtx, NodeLogic, Sim, Time};
use escape_packet::Packet;
use proptest::prelude::*;

/// Records every arrival with its timestamp.
#[derive(Default)]
struct Recorder {
    arrivals: Vec<(u64, u64)>, // (time ns, packet id)
}

impl NodeLogic for Recorder {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: u16, pkt: Packet) {
        self.arrivals.push((ctx.now().as_ns(), pkt.id));
    }
}

/// Forwarder that sends everything out port 0.
struct Fwd;
impl NodeLogic for Fwd {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: u16, pkt: Packet) {
        ctx.send(0, pkt);
    }
}

fn arb_link() -> impl Strategy<Value = LinkConfig> {
    (
        1_000_000u64..10_000_000_000,
        0u64..10_000,
        0.0f64..0.5,
        1usize..64,
    )
        .prop_map(|(bw, delay_us, loss, q)| {
            LinkConfig::lan()
                .with_bandwidth(bw)
                .with_delay(Time::from_us(delay_us))
                .with_loss(loss)
                .with_queue(q)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arrival times at the receiver are non-decreasing and at least
    /// (injection + serialization + propagation) for every frame.
    #[test]
    fn arrivals_are_ordered_and_not_early(
        cfg in arb_link(),
        sends in proptest::collection::vec((0u64..1_000_000, 40usize..1500), 1..50),
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(seed);
        let a = sim.add_node("a", 1, Box::new(Fwd));
        let b = sim.add_node("b", 1, Box::new(Recorder::default()));
        sim.connect((a, 0), (b, 0), cfg);
        let min_latency = cfg.delay.as_ns();
        for (t, len) in &sends {
            sim.inject(a, 0, Bytes::from(vec![0u8; *len]), Time::from_ns(*t));
        }
        sim.run(1_000_000);
        let rec = sim.node_as::<Recorder>(b).unwrap();
        let mut last = 0;
        for (t, _) in &rec.arrivals {
            prop_assert!(*t >= last, "time went backwards");
            last = *t;
        }
        // Every arrival is at least min_latency after the earliest send.
        if let Some((first_arrival, _)) = rec.arrivals.first() {
            let earliest_send = sends.iter().map(|(t, _)| *t).min().unwrap();
            prop_assert!(*first_arrival >= earliest_send + min_latency);
        }
    }

    /// sent = delivered + dropped, always.
    #[test]
    fn frames_are_conserved(
        cfg in arb_link(),
        n in 1usize..100,
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(seed);
        let a = sim.add_node("a", 1, Box::new(Fwd));
        let b = sim.add_node("b", 1, Box::new(Recorder::default()));
        sim.connect((a, 0), (b, 0), cfg);
        for i in 0..n {
            sim.inject(a, 0, Bytes::from(vec![0u8; 100]), Time::from_us(i as u64));
        }
        sim.run(1_000_000);
        // a's forwards are the "sent" frames.
        prop_assert_eq!(
            sim.stats().frames_sent,
            (sim.stats().frames_delivered - n as u64) + sim.stats().drops_total()
        );
    }

    /// Identical seeds and workloads produce byte-identical stats.
    #[test]
    fn deterministic_under_loss(
        seed in any::<u64>(),
        n in 1usize..80,
    ) {
        let run = || {
            let mut sim = Sim::new(seed);
            let a = sim.add_node("a", 1, Box::new(Fwd));
            let b = sim.add_node("b", 1, Box::new(Recorder::default()));
            sim.connect((a, 0), (b, 0), LinkConfig::lan().with_loss(0.3));
            for i in 0..n {
                sim.inject(a, 0, Bytes::from(vec![0u8; 64]), Time::from_us(i as u64 * 3));
            }
            sim.run(100_000);
            (sim.stats(), sim.node_as::<Recorder>(b).unwrap().arrivals.clone())
        };
        prop_assert_eq!(run(), run());
    }

    /// The CPU model never completes work before `now`, and total_busy
    /// equals the sum of submitted costs.
    #[test]
    fn cpu_model_accounting(
        jobs in proptest::collection::vec((0u64..1_000_000, 1u64..100_000), 1..40),
    ) {
        use escape_netem::{CpuModel, IsolationMode};
        let mut cpu = CpuModel::new();
        let p = cpu.add_process(IsolationMode::None);
        let mut total = 0u64;
        let mut last_done = Time::ZERO;
        for (at, cost) in &jobs {
            let done = cpu.run(p, Time::from_ns(*at), *cost);
            prop_assert!(done.as_ns() >= at + cost);
            prop_assert!(done >= last_done, "completions are ordered");
            last_done = done;
            total += cost;
        }
        prop_assert_eq!(cpu.total_busy, total);
        prop_assert_eq!(cpu.process_usage(p), total);
    }
}
