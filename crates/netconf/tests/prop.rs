//! Property tests for NETCONF: XML round trips, framing reassembly under
//! arbitrary splits, envelope round trips, datastore edit laws, backoff
//! schedule invariants.

use escape_netconf::datastore::{Datastore, EditOperation};
use escape_netconf::framing::Framer;
use escape_netconf::message::{Rpc, RpcReply};
use escape_netconf::retry::RetryPolicy;
use escape_netconf::xml::{escape, XmlElement};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,10}".prop_map(|s| s)
}

fn arb_text() -> impl Strategy<Value = String> {
    // Any printable content; entities must round-trip.
    "[ -~]{0,30}".prop_map(|s| s.trim().to_string())
}

fn arb_xml() -> impl Strategy<Value = XmlElement> {
    let leaf = (
        arb_name(),
        arb_text(),
        proptest::collection::vec((arb_name(), arb_text()), 0..3),
    )
        .prop_map(|(name, text, attrs)| {
            let mut el = XmlElement::text_node(name, text);
            // Attribute keys must be unique for round-trip equality.
            let mut seen = std::collections::HashSet::new();
            for (k, v) in attrs {
                if seen.insert(k.clone()) {
                    el.attrs.push((k, v));
                }
            }
            el
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (arb_name(), proptest::collection::vec(inner, 0..4)).prop_map(|(name, children)| {
            let mut el = XmlElement::new(name);
            if children.is_empty() {
                el.text = "x".into();
            }
            el.children = children;
            el.text = if el.children.is_empty() {
                el.text
            } else {
                String::new()
            };
            el
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn xml_roundtrip(el in arb_xml()) {
        let text = el.to_xml();
        let back = XmlElement::parse(&text).unwrap();
        prop_assert_eq!(back, el);
    }

    #[test]
    fn xml_parser_never_panics(src in "\\PC{0,300}") {
        let _ = XmlElement::parse(&src);
    }

    #[test]
    fn escape_roundtrips_through_parse(text in "[ -~]{0,60}") {
        let doc = format!("<t>{}</t>", escape(&text));
        let el = XmlElement::parse(&doc).unwrap();
        prop_assert_eq!(el.text, text.trim());
    }

    /// Framer reassembles messages regardless of how the byte stream is
    /// split into feeds.
    #[test]
    fn framer_reassembles_any_split(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..60), 1..6),
        cuts in proptest::collection::vec(1usize..20, 0..30),
    ) {
        // Messages must not contain the EOM marker themselves.
        let msgs: Vec<Vec<u8>> = msgs
            .into_iter()
            .map(|m| m.into_iter().filter(|&b| b != b']').collect())
            .collect();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend(Framer::frame(m));
        }
        let mut f = Framer::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut cuts = cuts.into_iter();
        while pos < wire.len() {
            let step = cuts.next().unwrap_or(7).min(wire.len() - pos);
            got.extend(f.feed(&wire[pos..pos + step]));
            pos += step;
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(f.pending(), 0);
    }

    #[test]
    fn rpc_envelope_roundtrip(id in any::<u64>(), op in arb_xml()) {
        let rpc = Rpc::new(id, op);
        let text = rpc.to_xml().to_xml();
        let back = Rpc::from_xml(&XmlElement::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, rpc);
    }

    #[test]
    fn reply_roundtrip(id in any::<u64>(), data in proptest::collection::vec(arb_xml(), 0..3)) {
        // `ok` and `rpc-error` element names are reserved by the reply
        // parser; rename any children that collide.
        let data: Vec<XmlElement> = data
            .into_iter()
            .map(|mut e| {
                if e.name == "ok" || e.name == "rpc-error" {
                    e.name = format!("x{}", e.name);
                }
                e
            })
            .collect();
        let reply = RpcReply::data(id, data);
        let text = reply.to_xml().to_xml();
        let back = RpcReply::from_xml(&XmlElement::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, reply);
    }

    /// Datastore law: merge then delete restores the original absence;
    /// failed edits never mutate.
    #[test]
    fn datastore_edit_laws(names in proptest::collection::vec(arb_name(), 1..6)) {
        let mut ds = Datastore::new();
        for n in &names {
            let cfg = XmlElement::parse(&format!("<config><{n}>1</{n}></config>")).unwrap();
            ds.edit(&cfg, EditOperation::Merge).unwrap();
        }
        // All present.
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        for n in &unique {
            prop_assert!(ds.get(None).find(n).is_some());
        }
        // Delete all; each unique name disappears.
        for n in &unique {
            let cfg = XmlElement::parse(&format!("<config><{n} operation=\"delete\"/></config>")).unwrap();
            ds.edit(&cfg, EditOperation::Merge).unwrap();
            prop_assert!(ds.get(None).find(n).is_none());
        }
        // Second delete fails and leaves the store unchanged.
        let before = ds.get(None);
        let n = names.first().unwrap();
        let cfg = XmlElement::parse(&format!("<config><{n} operation=\"delete\"/></config>")).unwrap();
        prop_assert!(ds.edit(&cfg, EditOperation::Merge).is_err());
        prop_assert_eq!(ds.get(None), before);
    }

    /// Backoff schedules are monotone non-decreasing: later retries never
    /// wait less than earlier ones, jitter notwithstanding.
    #[test]
    fn backoff_is_monotone_non_decreasing(
        base in 1u64..1_000_000,
        cap_mult in 1u64..1_000,
        jitter in 0.0f64..1.0,
        retries in 1u32..40,
        seed in any::<u64>(),
    ) {
        let p = RetryPolicy::new(base, base.saturating_mul(cap_mult), jitter, retries, seed);
        let s = p.schedule();
        prop_assert_eq!(s.len(), retries as usize);
        prop_assert!(s.windows(2).all(|w| w[0] <= w[1]), "not monotone: {:?}", s);
    }

    /// Every delay respects the cap, and jitter only stretches upward by
    /// at most the jitter fraction of the raw exponential delay.
    #[test]
    fn backoff_is_capped_with_bounded_jitter(
        base in 1u64..1_000_000,
        cap_mult in 1u64..1_000,
        jitter in 0.0f64..1.0,
        attempt in 0u32..80,
        seed in any::<u64>(),
    ) {
        let p = RetryPolicy::new(base, base.saturating_mul(cap_mult), jitter, 4, seed);
        let raw = p.raw_delay_ns(attempt);
        let d = p.delay_ns(attempt);
        prop_assert!(d <= p.max_ns, "delay {d} above cap {}", p.max_ns);
        prop_assert!(d >= raw.min(p.max_ns), "jitter shrank the delay");
        let ceiling = raw.saturating_add((raw as f64 * p.jitter).ceil() as u64).min(p.max_ns);
        prop_assert!(d <= ceiling, "delay {d} above jitter ceiling {ceiling}");
    }

    /// The schedule is a pure function of the policy: same parameters,
    /// same delays — the determinism guard for recovery runs.
    #[test]
    fn backoff_is_deterministic_per_seed(
        base in 1u64..1_000_000,
        jitter in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mk = || RetryPolicy::new(base, base * 8, jitter, 6, seed).schedule();
        prop_assert_eq!(mk(), mk());
    }

    /// Seeds only shake delays within the jitter band: the raw
    /// exponential schedule is seed-free, any two seeds' delays differ
    /// by at most the jitter fraction of the raw delay (cap
    /// notwithstanding), and with zero jitter every seed agrees exactly.
    /// This is what makes backoff tunable per-environment without
    /// breaking cross-seed comparability of soak/chaos runs.
    #[test]
    fn backoff_seed_divergence_is_bounded_by_jitter(
        base in 1u64..1_000_000,
        cap_mult in 1u64..1_000,
        jitter in 0.0f64..1.0,
        retries in 1u32..20,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let cap = base.saturating_mul(cap_mult);
        let a = RetryPolicy::new(base, cap, jitter, retries, seed_a);
        let b = RetryPolicy::new(base, cap, jitter, retries, seed_b);
        for attempt in 0..retries {
            let raw = a.raw_delay_ns(attempt);
            prop_assert_eq!(raw, b.raw_delay_ns(attempt), "raw schedule must be seed-free");
            let band = (raw as f64 * jitter).ceil() as u64;
            let (da, db) = (a.delay_ns(attempt), b.delay_ns(attempt));
            prop_assert!(
                da.abs_diff(db) <= band,
                "attempt {}: seeds diverge by {} > jitter band {}",
                attempt, da.abs_diff(db), band
            );
            prop_assert!(da <= a.max_ns && db <= b.max_ns, "cap still binds under any seed");
        }
        let zero_a = RetryPolicy::new(base, cap, 0.0, retries, seed_a).schedule();
        let zero_b = RetryPolicy::new(base, cap, 0.0, retries, seed_b).schedule();
        prop_assert_eq!(zero_a, zero_b, "zero jitter must erase the seed entirely");
    }
}
