//! The NETCONF client (the orchestrator side), sans-IO.

use crate::framing::Framer;
use crate::message::{self, ReplyBody, RpcReply};
use crate::vnf_starter::{
    RPC_CONNECT, RPC_DISCONNECT, RPC_GET_INFO, RPC_INITIATE, RPC_START, RPC_STOP,
};
use crate::xml::XmlElement;
use escape_telemetry::{Counter, Registry};

/// Events surfaced to the caller as server bytes are fed in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// The server hello arrived.
    HelloReceived {
        session_id: Option<u32>,
        capabilities: Vec<String>,
    },
    /// A reply to an outstanding rpc.
    Reply(RpcReply),
    /// A framed message that could not be understood: not UTF-8, not
    /// well-formed XML, or XML that is neither a hello nor an rpc-reply
    /// (e.g. a truncated document). Surfaced instead of silently dropped
    /// so the caller can fail the in-flight RPC with a typed error.
    Malformed { reason: String },
}

/// A NETCONF client session: builds framed requests, parses framed
/// replies.
pub struct Client {
    framer: Framer,
    next_id: u64,
    /// Set once the server hello arrives.
    pub session_id: Option<u32>,
    /// Server capabilities.
    pub server_caps: Vec<String>,
    /// Message ids sent but not yet answered.
    pub outstanding: Vec<u64>,
    /// RPCs sent (`netconf.rpcs_sent`).
    rpcs_ctr: Counter,
    /// Replies parsed (`netconf.replies_received`).
    replies_ctr: Counter,
    /// Replies carrying `<rpc-error>` (`netconf.rpc_errors`).
    errors_ctr: Counter,
    /// Framed messages that could not be parsed (`netconf.malformed_replies`).
    malformed_ctr: Counter,
}

impl Client {
    pub fn new() -> Client {
        Client::with_registry(Registry::new())
    }

    /// A client publishing `netconf.*` counters into `registry` — the
    /// environment passes the simulation-wide registry here.
    pub fn with_registry(registry: Registry) -> Client {
        Client {
            framer: Framer::new(),
            next_id: 0,
            session_id: None,
            server_caps: Vec::new(),
            outstanding: Vec::new(),
            rpcs_ctr: registry.counter("netconf.rpcs_sent"),
            replies_ctr: registry.counter("netconf.replies_received"),
            errors_ctr: registry.counter("netconf.rpc_errors"),
            malformed_ctr: registry.counter("netconf.malformed_replies"),
        }
    }

    /// The client `<hello>`, framed.
    pub fn start(&self) -> Vec<u8> {
        Framer::frame(
            message::hello(&[message::BASE_CAP], None)
                .to_xml()
                .as_bytes(),
        )
    }

    /// True once the capability exchange completed.
    pub fn ready(&self) -> bool {
        self.session_id.is_some()
    }

    /// True if the server announced the `vnf_starter` capability.
    pub fn has_vnf_starter(&self) -> bool {
        self.server_caps
            .iter()
            .any(|c| c == message::VNF_STARTER_CAP)
    }

    /// Wraps an operation into a framed `<rpc>`; returns (message-id,
    /// wire bytes).
    pub fn rpc(&mut self, operation: XmlElement) -> (u64, Vec<u8>) {
        self.next_id += 1;
        let id = self.next_id;
        self.rpcs_ctr.inc();
        self.outstanding.push(id);
        let rpc = message::Rpc::new(id, operation);
        (id, Framer::frame(rpc.to_xml().to_xml().as_bytes()))
    }

    /// Feeds server bytes; returns parsed events. Messages that cannot
    /// be understood surface as [`ClientEvent::Malformed`] (and bump
    /// `netconf.malformed_replies`) — there is no panic path, and a bad
    /// message never corrupts the session state for later good ones.
    pub fn on_bytes(&mut self, data: &[u8]) -> Vec<ClientEvent> {
        let mut events = Vec::new();
        for msg in self.framer.feed(data) {
            let Ok(text) = std::str::from_utf8(&msg) else {
                self.malformed_ctr.inc();
                events.push(ClientEvent::Malformed {
                    reason: "reply is not valid UTF-8".into(),
                });
                continue;
            };
            let el = match XmlElement::parse(text) {
                Ok(el) => el,
                Err(e) => {
                    self.malformed_ctr.inc();
                    events.push(ClientEvent::Malformed {
                        reason: format!("reply is not well-formed XML: {e}"),
                    });
                    continue;
                }
            };
            if let Some((caps, sid)) = message::parse_hello(&el) {
                self.session_id = sid;
                self.server_caps = caps.clone();
                events.push(ClientEvent::HelloReceived {
                    session_id: sid,
                    capabilities: caps,
                });
                continue;
            }
            if let Some(reply) = RpcReply::from_xml(&el) {
                self.outstanding.retain(|&i| i != reply.message_id);
                self.replies_ctr.inc();
                if matches!(reply.body, ReplyBody::Errors(_)) {
                    self.errors_ctr.inc();
                }
                events.push(ClientEvent::Reply(reply));
                continue;
            }
            self.malformed_ctr.inc();
            events.push(ClientEvent::Malformed {
                reason: format!("unrecognized message <{}>", el.name),
            });
        }
        events
    }

    /// Framed messages seen that could not be parsed into an event.
    pub fn malformed_replies(&self) -> u64 {
        self.malformed_ctr.get()
    }

    // ----- typed vnf_starter requests -------------------------------

    /// `initiateVNF`: create a VNF from a catalog type and/or raw Click
    /// config.
    pub fn initiate_vnf(
        &mut self,
        vnf_type: &str,
        click_config: Option<&str>,
        options: &[(String, String)],
    ) -> (u64, Vec<u8>) {
        let mut op =
            XmlElement::new(RPC_INITIATE).child(XmlElement::text_node("vnf-type", vnf_type));
        if let Some(cfg) = click_config {
            op.children.push(XmlElement::text_node("click-config", cfg));
        }
        if !options.is_empty() {
            let mut opts = XmlElement::new("options");
            for (k, v) in options {
                opts.children.push(
                    XmlElement::new("option")
                        .child(XmlElement::text_node("name", k))
                        .child(XmlElement::text_node("value", v)),
                );
            }
            op.children.push(opts);
        }
        self.rpc(op)
    }

    /// `startVNF`.
    pub fn start_vnf(&mut self, vnf_id: &str) -> (u64, Vec<u8>) {
        self.rpc(XmlElement::new(RPC_START).child(XmlElement::text_node("vnf-id", vnf_id)))
    }

    /// `stopVNF`.
    pub fn stop_vnf(&mut self, vnf_id: &str) -> (u64, Vec<u8>) {
        self.rpc(XmlElement::new(RPC_STOP).child(XmlElement::text_node("vnf-id", vnf_id)))
    }

    /// `connectVNF`.
    pub fn connect_vnf(&mut self, vnf_id: &str, vnf_port: u16, switch_id: &str) -> (u64, Vec<u8>) {
        self.rpc(
            XmlElement::new(RPC_CONNECT)
                .child(XmlElement::text_node("vnf-id", vnf_id))
                .child(XmlElement::text_node("vnf-port", vnf_port.to_string()))
                .child(XmlElement::text_node("switch-id", switch_id)),
        )
    }

    /// `disconnectVNF`.
    pub fn disconnect_vnf(&mut self, vnf_id: &str, vnf_port: u16) -> (u64, Vec<u8>) {
        self.rpc(
            XmlElement::new(RPC_DISCONNECT)
                .child(XmlElement::text_node("vnf-id", vnf_id))
                .child(XmlElement::text_node("vnf-port", vnf_port.to_string())),
        )
    }

    /// `getVNFInfo` (all VNFs, or one).
    pub fn get_vnf_info(&mut self, vnf_id: Option<&str>) -> (u64, Vec<u8>) {
        let mut op = XmlElement::new(RPC_GET_INFO);
        if let Some(id) = vnf_id {
            op.children.push(XmlElement::text_node("vnf-id", id));
        }
        self.rpc(op)
    }

    /// `get` with an optional subtree filter.
    pub fn get(&mut self, filter: Option<XmlElement>) -> (u64, Vec<u8>) {
        let mut op = XmlElement::new("get");
        if let Some(f) = filter {
            let mut wrap = XmlElement::new("filter");
            wrap.children.push(f);
            op.children.push(wrap);
        }
        self.rpc(op)
    }

    /// `close-session`.
    pub fn close(&mut self) -> (u64, Vec<u8>) {
        self.rpc(XmlElement::new("close-session"))
    }
}

impl Default for Client {
    fn default() -> Self {
        Self::new()
    }
}

/// Pulls the `vnf-id` out of an `initiateVNF` reply.
pub fn vnf_id_of(reply: &RpcReply) -> Option<String> {
    match &reply.body {
        crate::message::ReplyBody::Data(d) => d
            .iter()
            .find(|e| e.name == "vnf-id")
            .map(|e| e.text.clone()),
        _ => None,
    }
}

/// Pulls the `switch-port` out of a `connectVNF` reply.
pub fn switch_port_of(reply: &RpcReply) -> Option<u16> {
    match &reply.body {
        crate::message::ReplyBody::Data(d) => d
            .iter()
            .find(|e| e.name == "switch-port")
            .and_then(|e| e.text.parse().ok()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::test_instr::MockInstr;
    use crate::agent::Agent;
    use crate::message::ReplyBody;

    /// Runs a full client<->agent exchange in memory.
    struct Loop {
        client: Client,
        agent: Agent<MockInstr>,
    }

    impl Loop {
        fn new() -> Loop {
            let mut l = Loop {
                client: Client::new(),
                agent: Agent::new(9, MockInstr::default()),
            };
            let server_hello = l.agent.start();
            let events = l.client.on_bytes(&server_hello);
            assert!(matches!(events[0], ClientEvent::HelloReceived { .. }));
            let client_hello = l.client.start();
            l.agent.on_bytes(&client_hello);
            l
        }

        fn call(&mut self, bytes: Vec<u8>) -> RpcReply {
            let out = self.agent.on_bytes(&bytes);
            let mut events = self.client.on_bytes(&out);
            assert_eq!(events.len(), 1);
            match events.remove(0) {
                ClientEvent::Reply(r) => r,
                other => panic!("expected reply, got {other:?}"),
            }
        }
    }

    #[test]
    fn capability_exchange() {
        let l = Loop::new();
        assert_eq!(l.client.session_id, Some(9));
        assert!(l.client.has_vnf_starter());
        assert!(l.client.ready());
    }

    #[test]
    fn typed_lifecycle_end_to_end() {
        let mut l = Loop::new();
        let (_, req) = l.client.initiate_vnf(
            "firewall",
            Some("FromDevice(0) -> ToDevice(0);"),
            &[("isolation".into(), "cpushare".into())],
        );
        let reply = l.call(req);
        let vnf_id = vnf_id_of(&reply).unwrap();
        assert_eq!(vnf_id, "vnf1");

        let (_, req) = l.client.connect_vnf(&vnf_id, 0, "s4");
        let reply = l.call(req);
        assert_eq!(switch_port_of(&reply), Some(100));

        let (_, req) = l.client.start_vnf(&vnf_id);
        assert_eq!(l.call(req).body, ReplyBody::Ok);

        let (_, req) = l.client.get_vnf_info(None);
        let reply = l.call(req);
        let ReplyBody::Data(d) = &reply.body else {
            panic!()
        };
        assert_eq!(
            d[0].find("vnf").unwrap().child_text("status"),
            Some("running")
        );

        let (_, req) = l.client.stop_vnf(&vnf_id);
        assert_eq!(l.call(req).body, ReplyBody::Ok);
        let (_, req) = l.client.disconnect_vnf(&vnf_id, 0);
        assert_eq!(l.call(req).body, ReplyBody::Ok);
        let (_, req) = l.client.close();
        assert_eq!(l.call(req).body, ReplyBody::Ok);
        assert!(l.agent.is_closed());
        assert!(l.client.outstanding.is_empty());
    }

    #[test]
    fn outstanding_tracking() {
        let mut l = Loop::new();
        let (id1, req1) = l.client.get(None);
        let (id2, _req2) = l.client.get(None);
        assert_eq!(l.client.outstanding, vec![id1, id2]);
        l.call(req1);
        assert_eq!(l.client.outstanding, vec![id2]);
    }

    #[test]
    fn helpers_return_none_on_errors() {
        let mut l = Loop::new();
        let (_, req) = l.client.start_vnf("ghost");
        let reply = l.call(req);
        assert!(matches!(reply.body, ReplyBody::Errors(_)));
        assert_eq!(vnf_id_of(&reply), None);
        assert_eq!(switch_port_of(&reply), None);
    }

    #[test]
    fn malformed_replies_surface_typed_events() {
        let mut l = Loop::new();
        let (id, req) = l.client.get(None);

        // Truncated XML: the document ends mid-element.
        let ev = l
            .client
            .on_bytes(&Framer::frame(b"<rpc-reply message-id=\"1\"><data>"));
        assert!(
            matches!(&ev[0], ClientEvent::Malformed { reason } if reason.contains("XML")),
            "{ev:?}"
        );
        // Bytes that are not UTF-8 at all.
        let ev = l.client.on_bytes(&Framer::frame(&[0xff, 0xfe, b'<', b'a']));
        assert!(
            matches!(&ev[0], ClientEvent::Malformed { reason } if reason.contains("UTF-8")),
            "{ev:?}"
        );
        // Well-formed XML that is neither a hello nor an rpc-reply.
        let ev = l.client.on_bytes(&Framer::frame(b"<surprise/>"));
        assert!(
            matches!(&ev[0], ClientEvent::Malformed { reason } if reason.contains("surprise")),
            "{ev:?}"
        );
        assert_eq!(l.client.malformed_replies(), 3);

        // The session survives: the outstanding rpc still completes.
        assert_eq!(l.client.outstanding, vec![id]);
        let reply = l.call(req);
        assert_eq!(reply.message_id, id);
        assert!(l.client.outstanding.is_empty());
    }

    #[test]
    fn get_with_filter_round_trip() {
        let mut l = Loop::new();
        let (_, req) = l.client.initiate_vnf("dpi", None, &[]);
        l.call(req);
        let (_, req) = l.client.get(Some(XmlElement::new("vnfs")));
        let reply = l.call(req);
        let ReplyBody::Data(d) = &reply.body else {
            panic!()
        };
        // Live state tree appears under <data>.
        assert!(d[0].find("vnfs").is_some());
    }
}
