//! NETCONF message envelopes: hello, rpc, rpc-reply, rpc-error.

use crate::xml::XmlElement;

/// The NETCONF base namespace.
pub const BASE_NS: &str = "urn:ietf:params:xml:ns:netconf:base:1.0";
/// The base 1.0 capability URI.
pub const BASE_CAP: &str = "urn:ietf:params:xml:ns:netconf:base:1.0";
/// ESCAPE's vnf_starter capability URI.
pub const VNF_STARTER_CAP: &str = "urn:escape:params:xml:ns:yang:vnf_starter";

/// A NETCONF-level error (an `<rpc-error>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetconfError {
    pub error_type: String,
    pub tag: String,
    pub message: String,
}

impl NetconfError {
    /// An `operation-failed` application error.
    pub fn operation_failed(message: impl Into<String>) -> NetconfError {
        NetconfError {
            error_type: "application".into(),
            tag: "operation-failed".into(),
            message: message.into(),
        }
    }

    /// An `operation-not-supported` error.
    pub fn not_supported(message: impl Into<String>) -> NetconfError {
        NetconfError {
            error_type: "application".into(),
            tag: "operation-not-supported".into(),
            message: message.into(),
        }
    }

    /// A `missing-element` protocol error.
    pub fn missing_element(name: &str) -> NetconfError {
        NetconfError {
            error_type: "protocol".into(),
            tag: "missing-element".into(),
            message: format!("missing element: {name}"),
        }
    }

    fn to_xml(&self) -> XmlElement {
        XmlElement::new("rpc-error")
            .child(XmlElement::text_node("error-type", &self.error_type))
            .child(XmlElement::text_node("error-tag", &self.tag))
            .child(XmlElement::text_node("error-message", &self.message))
    }

    fn from_xml(el: &XmlElement) -> NetconfError {
        NetconfError {
            error_type: el.child_text("error-type").unwrap_or("").to_string(),
            tag: el.child_text("error-tag").unwrap_or("").to_string(),
            message: el.child_text("error-message").unwrap_or("").to_string(),
        }
    }
}

impl std::fmt::Display for NetconfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rpc-error [{}/{}]: {}",
            self.error_type, self.tag, self.message
        )
    }
}

impl std::error::Error for NetconfError {}

/// Builds a `<hello>` with the given capabilities; agents include a
/// session id.
pub fn hello(capabilities: &[&str], session_id: Option<u32>) -> XmlElement {
    let mut caps = XmlElement::new("capabilities");
    for c in capabilities {
        caps.children.push(XmlElement::text_node("capability", *c));
    }
    let mut h = XmlElement::new("hello").attr("xmlns", BASE_NS).child(caps);
    if let Some(sid) = session_id {
        h.children
            .push(XmlElement::text_node("session-id", sid.to_string()));
    }
    h
}

/// Extracts the capability list from a `<hello>`.
pub fn parse_hello(el: &XmlElement) -> Option<(Vec<String>, Option<u32>)> {
    if el.name != "hello" {
        return None;
    }
    let caps = el
        .find("capabilities")?
        .find_all("capability")
        .map(|c| c.text.clone())
        .collect();
    let sid = el.child_text("session-id").and_then(|s| s.parse().ok());
    Some((caps, sid))
}

/// An `<rpc>` request: message id plus the operation element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rpc {
    pub message_id: u64,
    pub operation: XmlElement,
}

impl Rpc {
    /// Wraps an operation.
    pub fn new(message_id: u64, operation: XmlElement) -> Rpc {
        Rpc {
            message_id,
            operation,
        }
    }

    /// Serializes to the `<rpc>` envelope.
    pub fn to_xml(&self) -> XmlElement {
        XmlElement::new("rpc")
            .attr("message-id", self.message_id.to_string())
            .attr("xmlns", BASE_NS)
            .child(self.operation.clone())
    }

    /// Parses an `<rpc>` envelope.
    pub fn from_xml(el: &XmlElement) -> Option<Rpc> {
        if el.name != "rpc" || el.children.len() != 1 {
            return None;
        }
        let message_id = el.get_attr("message-id")?.parse().ok()?;
        Some(Rpc {
            message_id,
            operation: el.children[0].clone(),
        })
    }
}

/// An `<rpc-reply>`: ok, data, or errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcReply {
    pub message_id: u64,
    pub body: ReplyBody,
}

/// Reply payload alternatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyBody {
    Ok,
    /// Arbitrary result elements (e.g. `<data>` or RPC-specific output).
    Data(Vec<XmlElement>),
    Errors(Vec<NetconfError>),
}

impl RpcReply {
    pub fn ok(message_id: u64) -> RpcReply {
        RpcReply {
            message_id,
            body: ReplyBody::Ok,
        }
    }

    pub fn data(message_id: u64, data: Vec<XmlElement>) -> RpcReply {
        RpcReply {
            message_id,
            body: ReplyBody::Data(data),
        }
    }

    pub fn error(message_id: u64, e: NetconfError) -> RpcReply {
        RpcReply {
            message_id,
            body: ReplyBody::Errors(vec![e]),
        }
    }

    /// Serializes to the `<rpc-reply>` envelope.
    pub fn to_xml(&self) -> XmlElement {
        let mut el = XmlElement::new("rpc-reply")
            .attr("message-id", self.message_id.to_string())
            .attr("xmlns", BASE_NS);
        match &self.body {
            ReplyBody::Ok => el.children.push(XmlElement::new("ok")),
            ReplyBody::Data(d) => el.children.extend(d.iter().cloned()),
            ReplyBody::Errors(errs) => {
                el.children.extend(errs.iter().map(|e| e.to_xml()));
            }
        }
        el
    }

    /// Parses an `<rpc-reply>` envelope.
    pub fn from_xml(el: &XmlElement) -> Option<RpcReply> {
        if el.name != "rpc-reply" {
            return None;
        }
        let message_id = el.get_attr("message-id")?.parse().ok()?;
        let errors: Vec<NetconfError> = el
            .find_all("rpc-error")
            .map(NetconfError::from_xml)
            .collect();
        let body = if !errors.is_empty() {
            ReplyBody::Errors(errors)
        } else if el.find("ok").is_some() {
            ReplyBody::Ok
        } else {
            ReplyBody::Data(el.children.clone())
        };
        Some(RpcReply { message_id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip() {
        let h = hello(&[BASE_CAP, VNF_STARTER_CAP], Some(7));
        let (caps, sid) = parse_hello(&h).unwrap();
        assert_eq!(caps.len(), 2);
        assert!(caps.contains(&VNF_STARTER_CAP.to_string()));
        assert_eq!(sid, Some(7));
        // Client hello has no session id.
        let h = hello(&[BASE_CAP], None);
        let (_, sid) = parse_hello(&h).unwrap();
        assert_eq!(sid, None);
    }

    #[test]
    fn rpc_roundtrip() {
        let rpc = Rpc::new(42, XmlElement::new("get"));
        let back = Rpc::from_xml(&XmlElement::parse(&rpc.to_xml().to_xml()).unwrap()).unwrap();
        assert_eq!(back, rpc);
    }

    #[test]
    fn reply_variants_roundtrip() {
        for reply in [
            RpcReply::ok(1),
            RpcReply::data(2, vec![XmlElement::text_node("vnf-id", "vnf7")]),
            RpcReply::error(3, NetconfError::operation_failed("boom")),
        ] {
            let back =
                RpcReply::from_xml(&XmlElement::parse(&reply.to_xml().to_xml()).unwrap()).unwrap();
            assert_eq!(back, reply);
        }
    }

    #[test]
    fn error_constructors() {
        assert_eq!(
            NetconfError::missing_element("vnf-id").tag,
            "missing-element"
        );
        assert_eq!(
            NetconfError::not_supported("x").tag,
            "operation-not-supported"
        );
        let e = NetconfError::operation_failed("nope");
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn malformed_envelopes_rejected() {
        assert!(Rpc::from_xml(&XmlElement::new("rpc")).is_none()); // no op, no id
        assert!(parse_hello(&XmlElement::new("goodbye")).is_none());
        assert!(RpcReply::from_xml(&XmlElement::new("rpc")).is_none());
    }
}
