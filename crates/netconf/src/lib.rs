//! # escape-netconf
//!
//! A NETCONF (RFC 6241 subset) implementation — the OpenYuma role in
//! ESCAPE-RS.
//!
//! The paper manages VNF containers through NETCONF: an agent per
//! container exposes RPCs described in YANG (ESCAPE's `vnf_starter`
//! module) and the orchestrator drives them as a NETCONF client. This
//! crate reimplements that stack from scratch:
//!
//! * [`xml`] — a small, strict XML reader/writer (the only consumer is
//!   NETCONF itself, so namespaces are carried as plain attributes);
//! * [`framing`] — NETCONF 1.0 end-of-message framing (`]]>]]>`);
//! * [`message`] — `<hello>`, `<rpc>`, `<rpc-reply>`, `<rpc-error>`
//!   envelopes;
//! * [`yang`] — a YANG-lite schema model with validation, plus the
//!   `vnf_starter` module both as a programmatic schema and rendered YANG
//!   text;
//! * [`datastore`] — running/candidate datastores with subtree `get`,
//!   `edit-config` (merge/replace/delete), `commit` and locking;
//! * [`agent`] — the server side: a **sans-IO** session state machine
//!   (bytes in → bytes out) dispatching standard operations and the
//!   `vnf_starter` RPCs into a pluggable [`agent::VnfInstrumentation`] —
//!   mirroring the paper's note that porting to real platforms only
//!   requires swapping the instrumentation;
//! * [`client`] — the orchestrator-side client with typed wrappers for
//!   every `vnf_starter` RPC;
//! * [`retry`] — deterministic exponential-backoff schedules (with cap
//!   and seeded jitter) for driving RPC retries in virtual time.

pub mod agent;
pub mod client;
pub mod datastore;
pub mod framing;
pub mod message;
pub mod retry;
pub mod vnf_starter;
pub mod xml;
pub mod yang;

pub use agent::{Agent, VnfInstrumentation};
pub use client::{Client, ClientEvent};
pub use datastore::{Datastore, EditOperation};
pub use framing::Framer;
pub use message::{NetconfError, Rpc, RpcReply};
pub use retry::RetryPolicy;
pub use xml::XmlElement;
