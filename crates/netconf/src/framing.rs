//! NETCONF 1.0 end-of-message framing.
//!
//! Messages on a NETCONF 1.0 session are separated by the sequence
//! `]]>]]>`. [`Framer`] turns a byte stream into complete messages and
//! frames outgoing messages.

/// The end-of-message delimiter.
pub const EOM: &[u8] = b"]]>]]>";

/// Accumulates stream bytes and yields complete messages.
#[derive(Debug, Default)]
pub struct Framer {
    buf: Vec<u8>,
}

impl Framer {
    /// An empty framer.
    pub fn new() -> Framer {
        Framer::default()
    }

    /// Appends stream bytes; returns every complete message now available
    /// (without the delimiter).
    pub fn feed(&mut self, data: &[u8]) -> Vec<Vec<u8>> {
        self.buf.extend_from_slice(data);
        let mut out = Vec::new();
        while let Some(i) = self.buf.windows(EOM.len()).position(|w| w == EOM) {
            let msg = self.buf[..i].to_vec();
            self.buf.drain(..i + EOM.len());
            out.push(msg);
        }
        out
    }

    /// Bytes buffered awaiting a delimiter.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Frames one outgoing message.
    pub fn frame(msg: &[u8]) -> Vec<u8> {
        let mut v = Vec::with_capacity(msg.len() + EOM.len());
        v.extend_from_slice(msg);
        v.extend_from_slice(EOM);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_message_roundtrip() {
        let mut f = Framer::new();
        let wire = Framer::frame(b"<hello/>");
        let msgs = f.feed(&wire);
        assert_eq!(msgs, vec![b"<hello/>".to_vec()]);
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn split_across_feeds() {
        let mut f = Framer::new();
        let wire = Framer::frame(b"<rpc>payload</rpc>");
        let (a, b) = wire.split_at(7);
        assert!(f.feed(a).is_empty());
        let msgs = f.feed(b);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0], b"<rpc>payload</rpc>");
    }

    #[test]
    fn delimiter_split_across_feeds() {
        let mut f = Framer::new();
        let wire = Framer::frame(b"x");
        // Split inside the 6-byte delimiter.
        let cut = wire.len() - 3;
        assert!(f.feed(&wire[..cut]).is_empty());
        assert_eq!(f.feed(&wire[cut..]).len(), 1);
    }

    #[test]
    fn multiple_messages_in_one_feed() {
        let mut f = Framer::new();
        let mut wire = Framer::frame(b"one");
        wire.extend(Framer::frame(b"two"));
        wire.extend(b"partial".iter());
        let msgs = f.feed(&wire);
        assert_eq!(msgs, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(f.pending(), 7);
    }

    #[test]
    fn empty_message_is_allowed() {
        let mut f = Framer::new();
        assert_eq!(f.feed(EOM), vec![Vec::<u8>::new()]);
    }
}
