//! ESCAPE's `vnf_starter` YANG module.
//!
//! The paper: *"A NETCONF agent is responsible for managing VNF containers
//! and assigned switch(es). More specifically, the agent is able to
//! start/stop VNFs and connect/disconnect VNFs to/from switches. The
//! operation of the agent is described by the YANG data modeling
//! language..."* — this module is that description, as both a
//! programmatic schema (used for validation by agent and client) and
//! rendered YANG text.

use crate::yang::{Module, RpcSchema, SchemaNode, YangType};

/// RPC names exposed by the agent.
pub const RPC_INITIATE: &str = "initiateVNF";
pub const RPC_START: &str = "startVNF";
pub const RPC_STOP: &str = "stopVNF";
pub const RPC_CONNECT: &str = "connectVNF";
pub const RPC_DISCONNECT: &str = "disconnectVNF";
pub const RPC_GET_INFO: &str = "getVNFInfo";

/// Builds the `vnf_starter` module schema.
pub fn module() -> Module {
    let status_type = YangType::Enumeration(vec![
        "initiated".into(),
        "running".into(),
        "stopped".into(),
        "failed".into(),
    ]);
    let vnf_list = SchemaNode::list(
        "vnf",
        "id",
        vec![
            SchemaNode::leaf("id", YangType::String, true),
            SchemaNode::leaf("type", YangType::String, false),
            SchemaNode::leaf("status", status_type.clone(), false),
            SchemaNode::list(
                "port",
                "number",
                vec![
                    SchemaNode::leaf("number", YangType::Uint16, true),
                    SchemaNode::leaf("switch", YangType::String, false),
                ],
            ),
            SchemaNode::list(
                "handler",
                "name",
                vec![
                    SchemaNode::leaf("name", YangType::String, true),
                    SchemaNode::leaf("value", YangType::String, false),
                ],
            ),
        ],
    );
    Module {
        name: "vnf_starter".into(),
        namespace: crate::message::VNF_STARTER_CAP.into(),
        prefix: "vnf".into(),
        data: vec![SchemaNode::container("vnfs", vec![vnf_list.clone()])],
        rpcs: vec![
            RpcSchema {
                name: RPC_INITIATE.into(),
                input: vec![
                    SchemaNode::leaf("vnf-type", YangType::String, true),
                    SchemaNode::leaf("click-config", YangType::String, false),
                    SchemaNode::container(
                        "options",
                        vec![SchemaNode::list(
                            "option",
                            "name",
                            vec![
                                SchemaNode::leaf("name", YangType::String, true),
                                SchemaNode::leaf("value", YangType::String, false),
                            ],
                        )],
                    ),
                ],
                output: vec![SchemaNode::leaf("vnf-id", YangType::String, true)],
            },
            RpcSchema {
                name: RPC_START.into(),
                input: vec![SchemaNode::leaf("vnf-id", YangType::String, true)],
                output: vec![],
            },
            RpcSchema {
                name: RPC_STOP.into(),
                input: vec![SchemaNode::leaf("vnf-id", YangType::String, true)],
                output: vec![],
            },
            RpcSchema {
                name: RPC_CONNECT.into(),
                input: vec![
                    SchemaNode::leaf("vnf-id", YangType::String, true),
                    SchemaNode::leaf("vnf-port", YangType::Uint16, true),
                    SchemaNode::leaf("switch-id", YangType::String, true),
                ],
                output: vec![SchemaNode::leaf("switch-port", YangType::Uint16, true)],
            },
            RpcSchema {
                name: RPC_DISCONNECT.into(),
                input: vec![
                    SchemaNode::leaf("vnf-id", YangType::String, true),
                    SchemaNode::leaf("vnf-port", YangType::Uint16, true),
                ],
                output: vec![],
            },
            RpcSchema {
                name: RPC_GET_INFO.into(),
                input: vec![SchemaNode::leaf("vnf-id", YangType::String, false)],
                output: vec![SchemaNode::container("vnfs", vec![vnf_list])],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml::XmlElement;

    #[test]
    fn module_has_all_six_rpcs() {
        let m = module();
        for r in [
            RPC_INITIATE,
            RPC_START,
            RPC_STOP,
            RPC_CONNECT,
            RPC_DISCONNECT,
            RPC_GET_INFO,
        ] {
            assert!(m.rpc(r).is_some(), "missing rpc {r}");
        }
    }

    #[test]
    fn yang_text_mentions_the_paper_operations() {
        let y = module().to_yang();
        assert!(y.contains("module vnf_starter"));
        for r in [
            "initiateVNF",
            "startVNF",
            "stopVNF",
            "connectVNF",
            "disconnectVNF",
        ] {
            assert!(y.contains(r), "yang text missing {r}");
        }
    }

    #[test]
    fn validates_connect_input() {
        let m = module();
        let good = XmlElement::parse(
            "<connectVNF><vnf-id>v1</vnf-id><vnf-port>0</vnf-port><switch-id>s3</switch-id></connectVNF>",
        )
        .unwrap();
        m.validate_rpc_input(RPC_CONNECT, &good).unwrap();
        let bad = XmlElement::parse("<connectVNF><vnf-id>v1</vnf-id></connectVNF>").unwrap();
        assert!(m.validate_rpc_input(RPC_CONNECT, &bad).is_err());
        let bad_port = XmlElement::parse(
            "<connectVNF><vnf-id>v1</vnf-id><vnf-port>x</vnf-port><switch-id>s</switch-id></connectVNF>",
        )
        .unwrap();
        assert!(m.validate_rpc_input(RPC_CONNECT, &bad_port).is_err());
    }
}
