//! A minimal XML document model: parse, build, serialize.
//!
//! NETCONF payloads are machine-generated and well-formed, so this reader
//! supports exactly what NETCONF needs — elements, attributes, text
//! content, entity escaping, self-closing tags — and rejects everything
//! else (no DTDs, no processing instructions besides an optional leading
//! `<?xml ...?>`, no CDATA).

/// An XML element: name, attributes, text and child elements.
///
/// Mixed content is not modelled: an element holds either text or
/// children (text is ignored once children exist), which NETCONF never
/// violates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<XmlElement>,
    pub text: String,
}

/// XML parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub pos: usize,
    pub message: String,
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XML error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for XmlError {}

impl XmlElement {
    /// An element with no content.
    pub fn new(name: impl Into<String>) -> XmlElement {
        XmlElement {
            name: name.into(),
            ..Default::default()
        }
    }

    /// An element holding text.
    pub fn text_node(name: impl Into<String>, text: impl Into<String>) -> XmlElement {
        XmlElement {
            name: name.into(),
            text: text.into(),
            ..Default::default()
        }
    }

    /// Builder: adds an attribute.
    pub fn attr(mut self, k: impl Into<String>, v: impl Into<String>) -> XmlElement {
        self.attrs.push((k.into(), v.into()));
        self
    }

    /// Builder: adds a child.
    pub fn child(mut self, c: XmlElement) -> XmlElement {
        self.children.push(c);
        self
    }

    /// First child with the given name.
    pub fn find(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Text of the first child with the given name.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        self.find(name).map(|c| c.text.as_str())
    }

    /// Attribute value by name.
    pub fn get_attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes to a compact XML string.
    pub fn to_xml(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out);
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        if self.children.is_empty() {
            escape_into(&self.text, out);
        } else {
            for c in &self.children {
                c.write(out);
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Parses a document, returning its root element. A leading
    /// `<?xml ...?>` declaration is allowed and skipped.
    pub fn parse(src: &str) -> Result<XmlElement, XmlError> {
        let mut p = Parser {
            b: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.skip_decl()?;
        p.skip_ws();
        let root = p.element()?;
        p.skip_ws();
        if p.pos != p.b.len() {
            return Err(p.err("trailing content after root element"));
        }
        Ok(root)
    }
}

/// Escapes text for XML content or attribute values.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
}

fn unescape(s: &str, at: usize) -> Result<String, XmlError> {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let semi = rest.find(';').ok_or(XmlError {
            pos: at,
            message: "unterminated entity".into(),
        })?;
        match &rest[..=semi] {
            "&amp;" => out.push('&'),
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            other => {
                return Err(XmlError {
                    pos: at,
                    message: format!("unknown entity {other}"),
                })
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, m: impl Into<String>) -> XmlError {
        XmlError {
            pos: self.pos,
            message: m.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn skip_decl(&mut self) -> Result<(), XmlError> {
        if self.b[self.pos..].starts_with(b"<?xml") {
            match self.b[self.pos..].windows(2).position(|w| w == b"?>") {
                Some(i) => self.pos += i + 2,
                None => return Err(self.err("unterminated XML declaration")),
            }
        }
        Ok(())
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b':' | b'.'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(std::str::from_utf8(&self.b[start..self.pos])
            .unwrap()
            .to_string())
    }

    fn element(&mut self) -> Result<XmlElement, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut el = XmlElement::new(name);
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(el);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let k = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek().ok_or_else(|| self.err("eof in attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = std::str::from_utf8(&self.b[start..self.pos])
                        .map_err(|_| self.err("attribute not UTF-8"))?;
                    let v = unescape(raw, start)?;
                    self.pos += 1;
                    el.attrs.push((k, v));
                }
                None => return Err(self.err("eof in tag")),
            }
        }
        // Content: text and/or children until the close tag.
        let mut text = String::new();
        loop {
            match self.peek() {
                Some(b'<') => {
                    if self.b[self.pos..].starts_with(b"</") {
                        self.pos += 2;
                        let close = self.name()?;
                        if close != el.name {
                            return Err(self.err(format!(
                                "mismatched close tag: expected </{}>, got </{close}>",
                                el.name
                            )));
                        }
                        self.skip_ws();
                        if self.peek() != Some(b'>') {
                            return Err(self.err("expected '>' in close tag"));
                        }
                        self.pos += 1;
                        if el.children.is_empty() {
                            el.text = text.trim().to_string();
                        }
                        return Ok(el);
                    }
                    if self.b[self.pos..].starts_with(b"<!--") {
                        match self.b[self.pos..].windows(3).position(|w| w == b"-->") {
                            Some(i) => self.pos += i + 3,
                            None => return Err(self.err("unterminated comment")),
                        }
                        continue;
                    }
                    el.children.push(self.element()?);
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'<') {
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.b[start..self.pos])
                        .map_err(|_| self.err("text not UTF-8"))?;
                    text.push_str(&unescape(raw, start)?);
                }
                None => return Err(self.err(format!("eof inside <{}>", el.name))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_serialize() {
        let el = XmlElement::new("rpc")
            .attr("message-id", "101")
            .child(XmlElement::new("get"))
            .child(XmlElement::text_node("note", "a<b"));
        assert_eq!(
            el.to_xml(),
            r#"<rpc message-id="101"><get/><note>a&lt;b</note></rpc>"#
        );
    }

    #[test]
    fn parse_roundtrip() {
        let src = r#"<hello xmlns="urn:ietf:params:xml:ns:netconf:base:1.0"><capabilities><capability>urn:x</capability></capabilities><session-id>4</session-id></hello>"#;
        let el = XmlElement::parse(src).unwrap();
        assert_eq!(el.name, "hello");
        assert_eq!(
            el.get_attr("xmlns").unwrap(),
            "urn:ietf:params:xml:ns:netconf:base:1.0"
        );
        assert_eq!(
            el.find("capabilities")
                .unwrap()
                .find_all("capability")
                .count(),
            1
        );
        assert_eq!(el.child_text("session-id"), Some("4"));
        assert_eq!(XmlElement::parse(&el.to_xml()).unwrap(), el);
    }

    #[test]
    fn entities_roundtrip() {
        let el = XmlElement::text_node("t", r#"<>&"' and text"#).attr("a", "x&y");
        let back = XmlElement::parse(&el.to_xml()).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn self_closing_and_decl() {
        let el = XmlElement::parse("<?xml version=\"1.0\"?>\n<a><b/><c x='1'/></a>").unwrap();
        assert_eq!(el.children.len(), 2);
        assert_eq!(el.find("c").unwrap().get_attr("x"), Some("1"));
    }

    #[test]
    fn comments_are_skipped() {
        let el = XmlElement::parse("<a><!-- hi --><b/></a>").unwrap();
        assert_eq!(el.children.len(), 1);
    }

    #[test]
    fn whitespace_around_text_is_trimmed() {
        let el = XmlElement::parse("<a>\n  hello\n</a>").unwrap();
        assert_eq!(el.text, "hello");
    }

    #[test]
    fn errors_are_reported() {
        assert!(XmlElement::parse("<a><b></a>").is_err()); // mismatched
        assert!(XmlElement::parse("<a>").is_err()); // unterminated
        assert!(XmlElement::parse("<a x=1/>").is_err()); // unquoted attr
        assert!(XmlElement::parse("<a/><b/>").is_err()); // two roots
        assert!(XmlElement::parse("<a>&bogus;</a>").is_err()); // bad entity
        assert!(XmlElement::parse("").is_err());
    }

    #[test]
    fn error_display_has_position() {
        let e = XmlElement::parse("<a x=1/>").unwrap_err();
        assert!(e.to_string().contains("byte"));
    }
}
