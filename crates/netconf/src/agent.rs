//! The NETCONF agent: a sans-IO server session (the OpenYuma role).
//!
//! Bytes in, bytes out. The agent owns the running/candidate datastores
//! and dispatches the `vnf_starter` RPCs into a [`VnfInstrumentation`] —
//! the low-level glue the paper says is the only part needing adaptation
//! when moving to a real platform.

use crate::datastore::{Datastore, EditOperation};
use crate::framing::Framer;
use crate::message::{self, NetconfError, ReplyBody, Rpc, RpcReply};
use crate::vnf_starter::{
    self, RPC_CONNECT, RPC_DISCONNECT, RPC_GET_INFO, RPC_INITIATE, RPC_START, RPC_STOP,
};
use crate::xml::XmlElement;
use crate::yang::Module;

/// Live status of one VNF as reported by the instrumentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VnfStatusInfo {
    pub id: String,
    pub vnf_type: String,
    /// "initiated" | "running" | "stopped" | "failed".
    pub status: String,
    /// (vnf port, switch id) pairs currently connected.
    pub ports: Vec<(u16, String)>,
    /// Live element handler values (the Clicky view).
    pub handlers: Vec<(String, String)>,
}

/// The platform glue: what actually happens when the agent is asked to
/// manage a VNF. In ESCAPE-RS the implementation drives the emulated VNF
/// container; on a real platform it would exec Click processes and patch
/// veth pairs.
pub trait VnfInstrumentation {
    /// Creates a VNF of `vnf_type` (catalog name) or from a raw Click
    /// config; returns the new VNF id.
    fn initiate(
        &mut self,
        vnf_type: &str,
        click_config: Option<&str>,
        options: &[(String, String)],
    ) -> Result<String, String>;

    /// Starts packet processing.
    fn start(&mut self, vnf_id: &str) -> Result<(), String>;

    /// Stops packet processing.
    fn stop(&mut self, vnf_id: &str) -> Result<(), String>;

    /// Connects VNF port `vnf_port` to switch `switch_id`; returns the
    /// switch port used.
    fn connect(&mut self, vnf_id: &str, vnf_port: u16, switch_id: &str) -> Result<u16, String>;

    /// Disconnects a VNF port.
    fn disconnect(&mut self, vnf_id: &str, vnf_port: u16) -> Result<(), String>;

    /// Live status of one or all VNFs.
    fn info(&self, vnf_id: Option<&str>) -> Vec<VnfStatusInfo>;
}

/// Session protocol phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    AwaitHello,
    Ready,
    Closed,
}

/// Counters for tests and the management-latency experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    pub rpcs: u64,
    pub errors: u64,
    pub edits: u64,
}

/// A NETCONF agent session. See the module docs.
pub struct Agent<I> {
    session_id: u32,
    phase: Phase,
    framer: Framer,
    running: Datastore,
    candidate: Datastore,
    module: Module,
    pub instr: I,
    pub stats: AgentStats,
    /// Capabilities announced by the peer's hello.
    pub peer_caps: Vec<String>,
}

impl<I: VnfInstrumentation> Agent<I> {
    /// Creates the agent; call [`Agent::start`] to emit the server hello.
    pub fn new(session_id: u32, instr: I) -> Agent<I> {
        Agent {
            session_id,
            phase: Phase::AwaitHello,
            framer: Framer::new(),
            running: Datastore::new(),
            candidate: Datastore::new(),
            module: vnf_starter::module(),
            instr,
            stats: AgentStats::default(),
            peer_caps: Vec::new(),
        }
    }

    /// The server `<hello>`, framed for the wire.
    pub fn start(&self) -> Vec<u8> {
        let h = message::hello(
            &[message::BASE_CAP, message::VNF_STARTER_CAP],
            Some(self.session_id),
        );
        Framer::frame(h.to_xml().as_bytes())
    }

    /// True once the session is closed.
    pub fn is_closed(&self) -> bool {
        self.phase == Phase::Closed
    }

    /// The running datastore (diagnostics).
    pub fn running(&self) -> &Datastore {
        &self.running
    }

    /// Feeds stream bytes; returns framed response bytes to transmit.
    pub fn on_bytes(&mut self, data: &[u8]) -> Vec<u8> {
        let msgs = self.framer.feed(data);
        let mut out = Vec::new();
        for m in msgs {
            if let Some(reply) = self.on_message(&m) {
                out.extend(Framer::frame(reply.as_bytes()));
            }
        }
        out
    }

    fn on_message(&mut self, raw: &[u8]) -> Option<String> {
        let Ok(text) = std::str::from_utf8(raw) else {
            return None;
        };
        let Ok(el) = XmlElement::parse(text) else {
            self.stats.errors += 1;
            return None;
        };
        match self.phase {
            Phase::Closed => None,
            Phase::AwaitHello => {
                if let Some((caps, _)) = message::parse_hello(&el) {
                    self.peer_caps = caps;
                    self.phase = Phase::Ready;
                }
                None
            }
            Phase::Ready => {
                let Some(rpc) = Rpc::from_xml(&el) else {
                    self.stats.errors += 1;
                    return None;
                };
                self.stats.rpcs += 1;
                let reply = self.dispatch(&rpc);
                if matches!(reply.body, ReplyBody::Errors(_)) {
                    self.stats.errors += 1;
                }
                Some(reply.to_xml().to_xml())
            }
        }
    }

    fn dispatch(&mut self, rpc: &Rpc) -> RpcReply {
        let id = rpc.message_id;
        let op = &rpc.operation;
        match op.name.as_str() {
            "close-session" => {
                self.phase = Phase::Closed;
                RpcReply::ok(id)
            }
            "get" => {
                // State + config: datastore tree plus live VNF state.
                let mut data = self.running.get(op.find("filter")).clone();
                data.children.push(self.vnfs_state_tree(None));
                data.name = "data".into();
                RpcReply::data(id, vec![data])
            }
            "get-config" => {
                let store = match source_name(op, "source") {
                    Some("running") | None => &self.running,
                    Some("candidate") => &self.candidate,
                    Some(other) => {
                        return RpcReply::error(
                            id,
                            NetconfError::not_supported(format!("datastore {other}")),
                        )
                    }
                };
                RpcReply::data(id, vec![store.get(op.find("filter"))])
            }
            "edit-config" => {
                let target = source_name(op, "target").unwrap_or("running");
                let default_op = match op.child_text("default-operation") {
                    Some("replace") => EditOperation::Replace,
                    Some("none") | Some("merge") | None => EditOperation::Merge,
                    Some(other) => {
                        return RpcReply::error(
                            id,
                            NetconfError::not_supported(format!("default-operation {other}")),
                        )
                    }
                };
                let Some(config) = op.find("config") else {
                    return RpcReply::error(id, NetconfError::missing_element("config"));
                };
                let store = match target {
                    "running" => &mut self.running,
                    "candidate" => &mut self.candidate,
                    other => {
                        return RpcReply::error(
                            id,
                            NetconfError::not_supported(format!("datastore {other}")),
                        )
                    }
                };
                if store.locked_against(self.session_id) {
                    return RpcReply::error(id, NetconfError::operation_failed("datastore locked"));
                }
                match store.edit(config, default_op) {
                    Ok(()) => {
                        self.stats.edits += 1;
                        RpcReply::ok(id)
                    }
                    Err(e) => RpcReply::error(id, NetconfError::operation_failed(e)),
                }
            }
            "commit" => {
                self.running = self.candidate.clone();
                RpcReply::ok(id)
            }
            "lock" | "unlock" => {
                let target = source_name(op, "target").unwrap_or("running");
                let store = match target {
                    "running" => &mut self.running,
                    "candidate" => &mut self.candidate,
                    other => {
                        return RpcReply::error(
                            id,
                            NetconfError::not_supported(format!("datastore {other}")),
                        )
                    }
                };
                let r = if op.name == "lock" {
                    store.lock(self.session_id)
                } else {
                    store.unlock(self.session_id)
                };
                match r {
                    Ok(()) => RpcReply::ok(id),
                    Err(e) => RpcReply::error(id, NetconfError::operation_failed(e)),
                }
            }
            name @ (RPC_INITIATE | RPC_START | RPC_STOP | RPC_CONNECT | RPC_DISCONNECT
            | RPC_GET_INFO) => {
                if let Err(e) = self.module.validate_rpc_input(name, op) {
                    return RpcReply::error(id, NetconfError::operation_failed(e));
                }
                self.vnf_rpc(id, name, op)
            }
            other => RpcReply::error(id, NetconfError::not_supported(other)),
        }
    }

    fn vnf_rpc(&mut self, id: u64, name: &str, op: &XmlElement) -> RpcReply {
        let vnf_id = op.child_text("vnf-id");
        match name {
            RPC_INITIATE => {
                let vnf_type = op.child_text("vnf-type").unwrap_or("");
                let click = op.child_text("click-config");
                let options: Vec<(String, String)> = op
                    .find("options")
                    .map(|o| {
                        o.find_all("option")
                            .map(|opt| {
                                (
                                    opt.child_text("name").unwrap_or("").to_string(),
                                    opt.child_text("value").unwrap_or("").to_string(),
                                )
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                match self.instr.initiate(vnf_type, click, &options) {
                    Ok(new_id) => RpcReply::data(id, vec![XmlElement::text_node("vnf-id", new_id)]),
                    Err(e) => RpcReply::error(id, NetconfError::operation_failed(e)),
                }
            }
            RPC_START => match self.instr.start(vnf_id.unwrap_or("")) {
                Ok(()) => RpcReply::ok(id),
                Err(e) => RpcReply::error(id, NetconfError::operation_failed(e)),
            },
            RPC_STOP => match self.instr.stop(vnf_id.unwrap_or("")) {
                Ok(()) => RpcReply::ok(id),
                Err(e) => RpcReply::error(id, NetconfError::operation_failed(e)),
            },
            RPC_CONNECT => {
                let port: u16 = op
                    .child_text("vnf-port")
                    .unwrap_or("0")
                    .parse()
                    .unwrap_or(0);
                let sw = op.child_text("switch-id").unwrap_or("");
                match self.instr.connect(vnf_id.unwrap_or(""), port, sw) {
                    Ok(sw_port) => RpcReply::data(
                        id,
                        vec![XmlElement::text_node("switch-port", sw_port.to_string())],
                    ),
                    Err(e) => RpcReply::error(id, NetconfError::operation_failed(e)),
                }
            }
            RPC_DISCONNECT => {
                let port: u16 = op
                    .child_text("vnf-port")
                    .unwrap_or("0")
                    .parse()
                    .unwrap_or(0);
                match self.instr.disconnect(vnf_id.unwrap_or(""), port) {
                    Ok(()) => RpcReply::ok(id),
                    Err(e) => RpcReply::error(id, NetconfError::operation_failed(e)),
                }
            }
            RPC_GET_INFO => RpcReply::data(id, vec![self.vnfs_state_tree(vnf_id)]),
            _ => unreachable!("filtered by caller"),
        }
    }

    /// Builds the `<vnfs>` state tree from live instrumentation info.
    fn vnfs_state_tree(&self, vnf_id: Option<&str>) -> XmlElement {
        let mut vnfs = XmlElement::new("vnfs");
        for info in self.instr.info(vnf_id) {
            let mut v = XmlElement::new("vnf")
                .child(XmlElement::text_node("id", &info.id))
                .child(XmlElement::text_node("type", &info.vnf_type))
                .child(XmlElement::text_node("status", &info.status));
            for (num, sw) in &info.ports {
                v.children.push(
                    XmlElement::new("port")
                        .child(XmlElement::text_node("number", num.to_string()))
                        .child(XmlElement::text_node("switch", sw)),
                );
            }
            for (hname, hval) in &info.handlers {
                v.children.push(
                    XmlElement::new("handler")
                        .child(XmlElement::text_node("name", hname))
                        .child(XmlElement::text_node("value", hval)),
                );
            }
            vnfs.children.push(v);
        }
        vnfs
    }
}

fn source_name<'a>(op: &'a XmlElement, container: &str) -> Option<&'a str> {
    op.find(container)?
        .children
        .first()
        .map(|c| c.name.as_str())
}

#[cfg(test)]
pub(crate) mod test_instr {
    use super::*;
    use std::collections::HashMap;

    /// A scripted instrumentation for tests: records calls, assigns ids.
    #[derive(Default)]
    pub struct MockInstr {
        pub next: u32,
        pub vnfs: HashMap<String, VnfStatusInfo>,
        pub calls: Vec<String>,
        pub fail_start: bool,
    }

    impl VnfInstrumentation for MockInstr {
        fn initiate(
            &mut self,
            vnf_type: &str,
            _click: Option<&str>,
            _options: &[(String, String)],
        ) -> Result<String, String> {
            self.next += 1;
            let id = format!("vnf{}", self.next);
            self.calls.push(format!("initiate {vnf_type}"));
            self.vnfs.insert(
                id.clone(),
                VnfStatusInfo {
                    id: id.clone(),
                    vnf_type: vnf_type.to_string(),
                    status: "initiated".into(),
                    ports: vec![],
                    handlers: vec![],
                },
            );
            Ok(id)
        }

        fn start(&mut self, vnf_id: &str) -> Result<(), String> {
            if self.fail_start {
                return Err("start refused".into());
            }
            self.calls.push(format!("start {vnf_id}"));
            self.vnfs
                .get_mut(vnf_id)
                .map(|v| v.status = "running".into())
                .ok_or_else(|| format!("no vnf {vnf_id}"))
        }

        fn stop(&mut self, vnf_id: &str) -> Result<(), String> {
            self.calls.push(format!("stop {vnf_id}"));
            self.vnfs
                .get_mut(vnf_id)
                .map(|v| v.status = "stopped".into())
                .ok_or_else(|| format!("no vnf {vnf_id}"))
        }

        fn connect(&mut self, vnf_id: &str, vnf_port: u16, switch_id: &str) -> Result<u16, String> {
            self.calls
                .push(format!("connect {vnf_id}:{vnf_port} {switch_id}"));
            let v = self.vnfs.get_mut(vnf_id).ok_or("no vnf")?;
            v.ports.push((vnf_port, switch_id.to_string()));
            Ok(100 + vnf_port)
        }

        fn disconnect(&mut self, vnf_id: &str, vnf_port: u16) -> Result<(), String> {
            self.calls.push(format!("disconnect {vnf_id}:{vnf_port}"));
            let v = self.vnfs.get_mut(vnf_id).ok_or("no vnf")?;
            v.ports.retain(|(p, _)| *p != vnf_port);
            Ok(())
        }

        fn info(&self, vnf_id: Option<&str>) -> Vec<VnfStatusInfo> {
            let mut v: Vec<VnfStatusInfo> = self
                .vnfs
                .values()
                .filter(|i| vnf_id.is_none_or(|id| i.id == id))
                .cloned()
                .collect();
            v.sort_by(|a, b| a.id.cmp(&b.id));
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_instr::MockInstr;
    use super::*;

    fn ready_agent() -> Agent<MockInstr> {
        let mut a = Agent::new(1, MockInstr::default());
        let _hello = a.start();
        let client_hello = Framer::frame(
            message::hello(&[message::BASE_CAP], None)
                .to_xml()
                .as_bytes(),
        );
        let out = a.on_bytes(&client_hello);
        assert!(out.is_empty(), "hello needs no reply");
        a
    }

    fn send(a: &mut Agent<MockInstr>, id: u64, op: XmlElement) -> RpcReply {
        let rpc = Rpc::new(id, op);
        let wire = Framer::frame(rpc.to_xml().to_xml().as_bytes());
        let out = a.on_bytes(&wire);
        let mut f = Framer::new();
        let msgs = f.feed(&out);
        assert_eq!(msgs.len(), 1, "expected one reply");
        let el = XmlElement::parse(std::str::from_utf8(&msgs[0]).unwrap()).unwrap();
        RpcReply::from_xml(&el).unwrap()
    }

    fn xml(s: &str) -> XmlElement {
        XmlElement::parse(s).unwrap()
    }

    #[test]
    fn hello_exchange_then_rpc() {
        let mut a = ready_agent();
        let reply = send(&mut a, 1, XmlElement::new("get"));
        assert_eq!(reply.message_id, 1);
        assert!(matches!(reply.body, ReplyBody::Data(_)));
        assert_eq!(a.stats.rpcs, 1);
    }

    #[test]
    fn rpc_before_hello_is_dropped() {
        let mut a = Agent::new(1, MockInstr::default());
        let rpc = Rpc::new(1, XmlElement::new("get"));
        let out = a.on_bytes(&Framer::frame(rpc.to_xml().to_xml().as_bytes()));
        assert!(out.is_empty());
        assert_eq!(a.stats.rpcs, 0);
    }

    #[test]
    fn full_vnf_lifecycle() {
        let mut a = ready_agent();
        // initiate
        let r = send(
            &mut a,
            1,
            xml("<initiateVNF><vnf-type>firewall</vnf-type></initiateVNF>"),
        );
        let ReplyBody::Data(d) = &r.body else {
            panic!("expected data, got {r:?}")
        };
        assert_eq!(d[0].name, "vnf-id");
        let vnf_id = d[0].text.clone();
        // connect
        let r = send(
            &mut a,
            2,
            xml(&format!(
                "<connectVNF><vnf-id>{vnf_id}</vnf-id><vnf-port>0</vnf-port><switch-id>s1</switch-id></connectVNF>"
            )),
        );
        let ReplyBody::Data(d) = &r.body else {
            panic!()
        };
        assert_eq!(d[0].name, "switch-port");
        assert_eq!(d[0].text, "100");
        // start
        let r = send(
            &mut a,
            3,
            xml(&format!("<startVNF><vnf-id>{vnf_id}</vnf-id></startVNF>")),
        );
        assert_eq!(r.body, ReplyBody::Ok);
        // getVNFInfo shows status running + the port.
        let r = send(&mut a, 4, xml("<getVNFInfo/>"));
        let ReplyBody::Data(d) = &r.body else {
            panic!()
        };
        let vnf = d[0].find("vnf").unwrap();
        assert_eq!(vnf.child_text("status"), Some("running"));
        assert_eq!(vnf.find("port").unwrap().child_text("switch"), Some("s1"));
        // stop + disconnect
        let r = send(
            &mut a,
            5,
            xml(&format!("<stopVNF><vnf-id>{vnf_id}</vnf-id></stopVNF>")),
        );
        assert_eq!(r.body, ReplyBody::Ok);
        let r = send(
            &mut a,
            6,
            xml(&format!(
                "<disconnectVNF><vnf-id>{vnf_id}</vnf-id><vnf-port>0</vnf-port></disconnectVNF>"
            )),
        );
        assert_eq!(r.body, ReplyBody::Ok);
        assert_eq!(
            a.instr.calls,
            vec![
                "initiate firewall",
                &format!("connect {vnf_id}:0 s1"),
                &format!("start {vnf_id}"),
                &format!("stop {vnf_id}"),
                &format!("disconnect {vnf_id}:0"),
            ]
        );
    }

    #[test]
    fn invalid_rpc_input_yields_rpc_error() {
        let mut a = ready_agent();
        let r = send(&mut a, 1, xml("<startVNF/>")); // missing vnf-id
        assert!(matches!(r.body, ReplyBody::Errors(_)));
        assert_eq!(a.stats.errors, 1);
    }

    #[test]
    fn instrumentation_failure_propagates() {
        let mut a = ready_agent();
        a.instr.fail_start = true;
        send(
            &mut a,
            1,
            xml("<initiateVNF><vnf-type>x</vnf-type></initiateVNF>"),
        );
        let r = send(&mut a, 2, xml("<startVNF><vnf-id>vnf1</vnf-id></startVNF>"));
        let ReplyBody::Errors(errs) = &r.body else {
            panic!()
        };
        assert!(errs[0].message.contains("refused"));
    }

    #[test]
    fn edit_config_and_get_config() {
        let mut a = ready_agent();
        let r = send(
            &mut a,
            1,
            xml("<edit-config><target><running/></target><config><policy><name>gold</name></policy></config></edit-config>"),
        );
        assert_eq!(r.body, ReplyBody::Ok);
        let r = send(
            &mut a,
            2,
            xml("<get-config><source><running/></source></get-config>"),
        );
        let ReplyBody::Data(d) = &r.body else {
            panic!()
        };
        assert_eq!(
            d[0].find("policy").unwrap().child_text("name"),
            Some("gold")
        );
        assert_eq!(a.stats.edits, 1);
    }

    #[test]
    fn candidate_commit_flow() {
        let mut a = ready_agent();
        send(
            &mut a,
            1,
            xml(
                "<edit-config><target><candidate/></target><config><x>1</x></config></edit-config>",
            ),
        );
        // Running unaffected before commit.
        let r = send(
            &mut a,
            2,
            xml("<get-config><source><running/></source></get-config>"),
        );
        let ReplyBody::Data(d) = &r.body else {
            panic!()
        };
        assert!(d[0].find("x").is_none());
        send(&mut a, 3, xml("<commit/>"));
        let r = send(
            &mut a,
            4,
            xml("<get-config><source><running/></source></get-config>"),
        );
        let ReplyBody::Data(d) = &r.body else {
            panic!()
        };
        assert!(d[0].find("x").is_some());
    }

    #[test]
    fn close_session_ends_dialogue() {
        let mut a = ready_agent();
        let r = send(&mut a, 1, xml("<close-session/>"));
        assert_eq!(r.body, ReplyBody::Ok);
        assert!(a.is_closed());
        let rpc = Rpc::new(2, XmlElement::new("get"));
        let out = a.on_bytes(&Framer::frame(rpc.to_xml().to_xml().as_bytes()));
        assert!(out.is_empty());
    }

    #[test]
    fn unknown_operation_is_not_supported() {
        let mut a = ready_agent();
        let r = send(&mut a, 1, xml("<kill-switch/>"));
        let ReplyBody::Errors(e) = &r.body else {
            panic!()
        };
        assert_eq!(e[0].tag, "operation-not-supported");
    }

    #[test]
    fn get_includes_live_vnf_state() {
        let mut a = ready_agent();
        send(
            &mut a,
            1,
            xml("<initiateVNF><vnf-type>dpi</vnf-type></initiateVNF>"),
        );
        let r = send(&mut a, 2, XmlElement::new("get"));
        let ReplyBody::Data(d) = &r.body else {
            panic!()
        };
        let vnfs = d[0].find("vnfs").unwrap();
        assert_eq!(vnfs.find("vnf").unwrap().child_text("type"), Some("dpi"));
    }
}
