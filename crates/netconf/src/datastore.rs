//! Configuration datastores: running and candidate, with subtree filters,
//! edit-config semantics, commit and locking.

use crate::xml::XmlElement;

/// `operation` attribute values of edit-config (RFC 6241 §7.2 subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOperation {
    Merge,
    Replace,
    Delete,
}

impl EditOperation {
    pub fn parse(s: &str) -> Option<EditOperation> {
        Some(match s {
            "merge" => EditOperation::Merge,
            "replace" => EditOperation::Replace,
            "delete" => EditOperation::Delete,
            _ => return None,
        })
    }
}

/// One datastore: a config tree rooted at an anonymous `<config>` element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datastore {
    root: XmlElement,
    locked_by: Option<u32>,
}

impl Datastore {
    /// An empty datastore.
    pub fn new() -> Datastore {
        Datastore {
            root: XmlElement::new("data"),
            locked_by: None,
        }
    }

    /// The whole tree (root element named `data`).
    pub fn tree(&self) -> &XmlElement {
        &self.root
    }

    /// Locks for a session; fails if locked by someone else.
    pub fn lock(&mut self, session: u32) -> Result<(), String> {
        match self.locked_by {
            None => {
                self.locked_by = Some(session);
                Ok(())
            }
            Some(s) if s == session => Ok(()),
            Some(s) => Err(format!("locked by session {s}")),
        }
    }

    /// Unlocks if held by this session.
    pub fn unlock(&mut self, session: u32) -> Result<(), String> {
        match self.locked_by {
            Some(s) if s == session => {
                self.locked_by = None;
                Ok(())
            }
            Some(s) => Err(format!("locked by session {s}")),
            None => Err("not locked".into()),
        }
    }

    /// True if a session other than `session` holds the lock.
    pub fn locked_against(&self, session: u32) -> bool {
        matches!(self.locked_by, Some(s) if s != session)
    }

    /// Subtree `get`: returns the parts of the tree matching the filter.
    /// An empty/absent filter returns the whole tree. Filter semantics:
    /// an element in the filter selects children of the same name;
    /// leaves in the filter with text act as exact-match predicates.
    pub fn get(&self, filter: Option<&XmlElement>) -> XmlElement {
        match filter {
            None => self.root.clone(),
            Some(f) if f.children.is_empty() && f.text.is_empty() => self.root.clone(),
            Some(f) => {
                let mut out = XmlElement::new("data");
                out.children = Self::filter_children(&self.root, f);
                out
            }
        }
    }

    fn filter_children(node: &XmlElement, filter: &XmlElement) -> Vec<XmlElement> {
        let mut out = Vec::new();
        for fc in &filter.children {
            for nc in node.find_all(&fc.name) {
                if fc.children.is_empty() {
                    // Selection node (possibly with a text predicate).
                    if fc.text.is_empty() || fc.text == nc.text {
                        out.push(nc.clone());
                    }
                } else {
                    // Content-match nodes (leaves with text) act as
                    // predicates; remaining children select subtrees.
                    let is_pred = |p: &XmlElement| !p.text.is_empty() && p.children.is_empty();
                    let preds_ok = fc
                        .children
                        .iter()
                        .filter(|p| is_pred(p))
                        .all(|p| nc.child_text(&p.name) == Some(p.text.as_str()));
                    if !preds_ok {
                        continue;
                    }
                    let only_preds = fc.children.iter().all(is_pred);
                    if only_preds {
                        // RFC 6241 §6.2.5: content-match-only filters
                        // return the whole enclosing instance.
                        out.push(nc.clone());
                        continue;
                    }
                    let mut selection_filter = XmlElement::new(&fc.name);
                    selection_filter.children = fc
                        .children
                        .iter()
                        .filter(|p| !is_pred(p))
                        .cloned()
                        .collect();
                    let selected = Self::filter_children(nc, &selection_filter);
                    if !selected.is_empty() {
                        let mut copy = XmlElement::new(&nc.name);
                        copy.attrs = nc.attrs.clone();
                        copy.children = selected;
                        out.push(copy);
                    }
                }
            }
        }
        out
    }

    /// `edit-config`: applies `config` (a `<config>` element) with the
    /// default operation `merge`; per-element `operation` attributes
    /// override.
    pub fn edit(&mut self, config: &XmlElement, default_op: EditOperation) -> Result<(), String> {
        // Work on a copy so a failed edit leaves the store untouched.
        let mut root = self.root.clone();
        for c in &config.children {
            Self::apply(&mut root, c, default_op)?;
        }
        self.root = root;
        Ok(())
    }

    fn apply(
        target: &mut XmlElement,
        edit: &XmlElement,
        default_op: EditOperation,
    ) -> Result<(), String> {
        let op = match edit.get_attr("operation") {
            Some(s) => EditOperation::parse(s).ok_or_else(|| format!("bad operation {s:?}"))?,
            None => default_op,
        };
        // Identify the target child: same name, and if the edit carries a
        // `name` key leaf, the same key (list entry semantics).
        let key = edit.child_text("name").map(str::to_string);
        let existing = target.children.iter_mut().find(|c| {
            c.name == edit.name
                && match &key {
                    Some(k) => c.child_text("name") == Some(k.as_str()),
                    None => true,
                }
        });
        match op {
            EditOperation::Delete => {
                let before = target.children.len();
                target.children.retain(|c| {
                    !(c.name == edit.name
                        && match &key {
                            Some(k) => c.child_text("name") == Some(k.as_str()),
                            None => true,
                        })
                });
                if target.children.len() == before {
                    return Err(format!("delete: no such element {}", edit.name));
                }
                Ok(())
            }
            EditOperation::Replace => {
                let mut clean = edit.clone();
                clean.attrs.retain(|(k, _)| k != "operation");
                match existing {
                    Some(e) => *e = clean,
                    None => target.children.push(clean),
                }
                Ok(())
            }
            EditOperation::Merge => match existing {
                Some(e) => {
                    if edit.children.is_empty() {
                        e.text = edit.text.clone();
                        Ok(())
                    } else {
                        for c in &edit.children {
                            Self::apply(e, c, default_op)?;
                        }
                        Ok(())
                    }
                }
                None => {
                    let mut clean = edit.clone();
                    clean.attrs.retain(|(k, _)| k != "operation");
                    strip_op_attrs(&mut clean);
                    target.children.push(clean);
                    Ok(())
                }
            },
        }
    }
}

fn strip_op_attrs(el: &mut XmlElement) {
    el.attrs.retain(|(k, _)| k != "operation");
    for c in &mut el.children {
        strip_op_attrs(c);
    }
}

impl Default for Datastore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(s: &str) -> XmlElement {
        XmlElement::parse(s).unwrap()
    }

    #[test]
    fn merge_creates_and_updates() {
        let mut ds = Datastore::new();
        ds.edit(
            &cfg(
                "<config><vnfs><vnf><name>fw</name><status>stopped</status></vnf></vnfs></config>",
            ),
            EditOperation::Merge,
        )
        .unwrap();
        ds.edit(
            &cfg(
                "<config><vnfs><vnf><name>fw</name><status>running</status></vnf></vnfs></config>",
            ),
            EditOperation::Merge,
        )
        .unwrap();
        let tree = ds.get(None);
        let vnf = tree.find("vnfs").unwrap().find("vnf").unwrap();
        assert_eq!(vnf.child_text("status"), Some("running"));
        assert_eq!(tree.find("vnfs").unwrap().find_all("vnf").count(), 1);
    }

    #[test]
    fn list_entries_keyed_by_name() {
        let mut ds = Datastore::new();
        ds.edit(
            &cfg("<config><vnfs><vnf><name>fw</name></vnf></vnfs></config>"),
            EditOperation::Merge,
        )
        .unwrap();
        ds.edit(
            &cfg("<config><vnfs><vnf><name>nat</name></vnf></vnfs></config>"),
            EditOperation::Merge,
        )
        .unwrap();
        assert_eq!(
            ds.get(None).find("vnfs").unwrap().find_all("vnf").count(),
            2
        );
    }

    #[test]
    fn replace_overwrites_subtree() {
        let mut ds = Datastore::new();
        ds.edit(
            &cfg("<config><box><a>1</a><b>2</b></box></config>"),
            EditOperation::Merge,
        )
        .unwrap();
        ds.edit(
            &cfg("<config><box operation=\"replace\"><a>9</a></box></config>"),
            EditOperation::Merge,
        )
        .unwrap();
        let b = ds.get(None);
        let boxx = b.find("box").unwrap();
        assert_eq!(boxx.child_text("a"), Some("9"));
        assert!(boxx.find("b").is_none());
        assert!(boxx.get_attr("operation").is_none());
    }

    #[test]
    fn delete_removes_or_errors() {
        let mut ds = Datastore::new();
        ds.edit(&cfg("<config><x>1</x></config>"), EditOperation::Merge)
            .unwrap();
        ds.edit(
            &cfg("<config><x operation=\"delete\"/></config>"),
            EditOperation::Merge,
        )
        .unwrap();
        assert!(ds.get(None).find("x").is_none());
        let err = ds.edit(
            &cfg("<config><x operation=\"delete\"/></config>"),
            EditOperation::Merge,
        );
        assert!(err.is_err());
    }

    #[test]
    fn failed_edit_leaves_store_untouched() {
        let mut ds = Datastore::new();
        ds.edit(&cfg("<config><x>1</x></config>"), EditOperation::Merge)
            .unwrap();
        let before = ds.get(None);
        // Second element's delete fails; first merge must roll back.
        let r = ds.edit(
            &cfg("<config><y>2</y><nope operation=\"delete\"/></config>"),
            EditOperation::Merge,
        );
        assert!(r.is_err());
        assert_eq!(ds.get(None), before);
    }

    #[test]
    fn subtree_filter_selects() {
        let mut ds = Datastore::new();
        ds.edit(&cfg("<config><vnfs><vnf><name>fw</name><status>running</status></vnf><vnf><name>nat</name><status>stopped</status></vnf></vnfs><other>x</other></config>"), EditOperation::Merge).unwrap();
        // Select all vnfs.
        let got = ds.get(Some(&cfg("<filter><vnfs/></filter>")));
        assert!(got.find("vnfs").is_some());
        assert!(got.find("other").is_none());
        // Key predicate: only the fw entry.
        let got = ds.get(Some(&cfg(
            "<filter><vnfs><vnf><name>fw</name></vnf></vnfs></filter>",
        )));
        let vnfs = got.find("vnfs").unwrap();
        assert_eq!(vnfs.find_all("vnf").count(), 1);
        assert_eq!(
            vnfs.find("vnf").unwrap().child_text("status"),
            Some("running")
        );
    }

    #[test]
    fn empty_filter_returns_everything() {
        let mut ds = Datastore::new();
        ds.edit(&cfg("<config><a>1</a></config>"), EditOperation::Merge)
            .unwrap();
        let all = ds.get(Some(&cfg("<filter/>")));
        assert!(all.find("a").is_some());
    }

    #[test]
    fn locking_excludes_other_sessions() {
        let mut ds = Datastore::new();
        ds.lock(1).unwrap();
        ds.lock(1).unwrap(); // re-entrant for same session
        assert!(ds.lock(2).is_err());
        assert!(ds.locked_against(2));
        assert!(!ds.locked_against(1));
        assert!(ds.unlock(2).is_err());
        ds.unlock(1).unwrap();
        ds.lock(2).unwrap();
    }
}
