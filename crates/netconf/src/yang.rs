//! YANG-lite: a schema model with validation and YANG text rendering.
//!
//! The paper describes agent operations "by the YANG data modeling
//! language". This module gives ESCAPE-RS enough of YANG to express and
//! enforce the `vnf_starter` module: containers, lists with a key, typed
//! leaves, and RPC input/output definitions.

use crate::xml::XmlElement;

/// Leaf types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YangType {
    String,
    Uint16,
    Uint32,
    Boolean,
    Enumeration(Vec<String>),
}

impl YangType {
    /// Validates a textual value against the type.
    pub fn check(&self, value: &str) -> Result<(), String> {
        match self {
            YangType::String => Ok(()),
            YangType::Uint16 => value
                .parse::<u16>()
                .map(|_| ())
                .map_err(|_| format!("{value:?} is not a uint16")),
            YangType::Uint32 => value
                .parse::<u32>()
                .map(|_| ())
                .map_err(|_| format!("{value:?} is not a uint32")),
            YangType::Boolean => match value {
                "true" | "false" => Ok(()),
                _ => Err(format!("{value:?} is not a boolean")),
            },
            YangType::Enumeration(vals) => {
                if vals.iter().any(|v| v == value) {
                    Ok(())
                } else {
                    Err(format!("{value:?} not in enumeration {vals:?}"))
                }
            }
        }
    }

    fn yang_name(&self) -> String {
        match self {
            YangType::String => "string".into(),
            YangType::Uint16 => "uint16".into(),
            YangType::Uint32 => "uint32".into(),
            YangType::Boolean => "boolean".into(),
            YangType::Enumeration(vals) => {
                let mut s = String::from("enumeration {");
                for v in vals {
                    s.push_str(&format!(" enum {v};"));
                }
                s.push_str(" }");
                s
            }
        }
    }
}

/// A schema node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaNode {
    Leaf {
        name: String,
        ty: YangType,
        mandatory: bool,
    },
    Container {
        name: String,
        children: Vec<SchemaNode>,
    },
    List {
        name: String,
        key: String,
        children: Vec<SchemaNode>,
    },
}

impl SchemaNode {
    pub fn leaf(name: &str, ty: YangType, mandatory: bool) -> SchemaNode {
        SchemaNode::Leaf {
            name: name.into(),
            ty,
            mandatory,
        }
    }

    pub fn container(name: &str, children: Vec<SchemaNode>) -> SchemaNode {
        SchemaNode::Container {
            name: name.into(),
            children,
        }
    }

    pub fn list(name: &str, key: &str, children: Vec<SchemaNode>) -> SchemaNode {
        SchemaNode::List {
            name: name.into(),
            key: key.into(),
            children,
        }
    }

    fn name(&self) -> &str {
        match self {
            SchemaNode::Leaf { name, .. }
            | SchemaNode::Container { name, .. }
            | SchemaNode::List { name, .. } => name,
        }
    }
}

/// An RPC definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcSchema {
    pub name: String,
    pub input: Vec<SchemaNode>,
    pub output: Vec<SchemaNode>,
}

/// A YANG module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    pub name: String,
    pub namespace: String,
    pub prefix: String,
    pub rpcs: Vec<RpcSchema>,
    pub data: Vec<SchemaNode>,
}

impl Module {
    /// Finds an RPC by name.
    pub fn rpc(&self, name: &str) -> Option<&RpcSchema> {
        self.rpcs.iter().find(|r| r.name == name)
    }

    /// Validates an RPC input element (children of the operation element)
    /// against the schema.
    pub fn validate_rpc_input(&self, name: &str, op: &XmlElement) -> Result<(), String> {
        let rpc = self
            .rpc(name)
            .ok_or_else(|| format!("unknown rpc {name}"))?;
        validate_children(op, &rpc.input)
    }

    /// Renders the module as YANG text (for documentation and the
    /// capability exchange).
    pub fn to_yang(&self) -> String {
        let mut s = format!(
            "module {} {{\n  namespace \"{}\";\n  prefix {};\n\n",
            self.name, self.namespace, self.prefix
        );
        for n in &self.data {
            render_node(n, 1, &mut s);
        }
        for r in &self.rpcs {
            s.push_str(&format!("  rpc {} {{\n", r.name));
            if !r.input.is_empty() {
                s.push_str("    input {\n");
                for n in &r.input {
                    render_node(n, 3, &mut s);
                }
                s.push_str("    }\n");
            }
            if !r.output.is_empty() {
                s.push_str("    output {\n");
                for n in &r.output {
                    render_node(n, 3, &mut s);
                }
                s.push_str("    }\n");
            }
            s.push_str("  }\n");
        }
        s.push_str("}\n");
        s
    }
}

fn render_node(n: &SchemaNode, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match n {
        SchemaNode::Leaf {
            name,
            ty,
            mandatory,
        } => {
            out.push_str(&format!("{pad}leaf {name} {{ type {};", ty.yang_name()));
            if *mandatory {
                out.push_str(" mandatory true;");
            }
            out.push_str(" }\n");
        }
        SchemaNode::Container { name, children } => {
            out.push_str(&format!("{pad}container {name} {{\n"));
            for c in children {
                render_node(c, depth + 1, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        SchemaNode::List {
            name,
            key,
            children,
        } => {
            out.push_str(&format!("{pad}list {name} {{\n{pad}  key \"{key}\";\n"));
            for c in children {
                render_node(c, depth + 1, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

/// Validates that `el`'s children conform to `schema`: no unknown
/// elements, mandatory leaves present, leaf values type-check, list
/// entries carry their key.
pub fn validate_children(el: &XmlElement, schema: &[SchemaNode]) -> Result<(), String> {
    for child in &el.children {
        let node = schema
            .iter()
            .find(|n| n.name() == child.name)
            .ok_or_else(|| format!("unexpected element <{}> in <{}>", child.name, el.name))?;
        match node {
            SchemaNode::Leaf { ty, .. } => {
                ty.check(&child.text)
                    .map_err(|e| format!("leaf {}: {e}", child.name))?;
            }
            SchemaNode::Container { children, .. } => {
                validate_children(child, children)?;
            }
            SchemaNode::List { key, children, .. } => {
                if child.child_text(key).is_none() {
                    return Err(format!("list entry <{}> missing key <{key}>", child.name));
                }
                validate_children(child, children)?;
            }
        }
    }
    // Mandatory leaves must be present.
    for n in schema {
        if let SchemaNode::Leaf {
            name,
            mandatory: true,
            ..
        } = n
        {
            if el.find(name).is_none() {
                return Err(format!("missing mandatory leaf <{name}> in <{}>", el.name));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Vec<SchemaNode> {
        vec![
            SchemaNode::leaf("vnf-type", YangType::String, true),
            SchemaNode::leaf("port", YangType::Uint16, false),
            SchemaNode::leaf(
                "status",
                YangType::Enumeration(vec!["running".into(), "stopped".into()]),
                false,
            ),
            SchemaNode::container(
                "options",
                vec![SchemaNode::list(
                    "option",
                    "name",
                    vec![
                        SchemaNode::leaf("name", YangType::String, true),
                        SchemaNode::leaf("value", YangType::String, false),
                    ],
                )],
            ),
        ]
    }

    fn xml(s: &str) -> XmlElement {
        XmlElement::parse(s).unwrap()
    }

    #[test]
    fn valid_input_passes() {
        let el = xml("<in><vnf-type>firewall</vnf-type><port>8080</port><status>running</status><options><option><name>k</name><value>v</value></option></options></in>");
        validate_children(&el, &schema()).unwrap();
    }

    #[test]
    fn missing_mandatory_fails() {
        let el = xml("<in><port>1</port></in>");
        let err = validate_children(&el, &schema()).unwrap_err();
        assert!(err.contains("vnf-type"));
    }

    #[test]
    fn type_errors_are_caught() {
        let el = xml("<in><vnf-type>x</vnf-type><port>99999</port></in>");
        assert!(validate_children(&el, &schema())
            .unwrap_err()
            .contains("uint16"));
        let el = xml("<in><vnf-type>x</vnf-type><status>paused</status></in>");
        assert!(validate_children(&el, &schema())
            .unwrap_err()
            .contains("enumeration"));
    }

    #[test]
    fn unknown_elements_are_rejected() {
        let el = xml("<in><vnf-type>x</vnf-type><bogus>1</bogus></in>");
        assert!(validate_children(&el, &schema())
            .unwrap_err()
            .contains("bogus"));
    }

    #[test]
    fn list_key_is_required() {
        let el = xml(
            "<in><vnf-type>x</vnf-type><options><option><value>v</value></option></options></in>",
        );
        assert!(validate_children(&el, &schema())
            .unwrap_err()
            .contains("key"));
    }

    #[test]
    fn all_types_check() {
        YangType::Uint32.check("4000000000").unwrap();
        assert!(YangType::Uint32.check("-1").is_err());
        YangType::Boolean.check("true").unwrap();
        assert!(YangType::Boolean.check("yes").is_err());
        YangType::String.check("anything").unwrap();
    }

    #[test]
    fn module_renders_yang_text() {
        let m = Module {
            name: "demo".into(),
            namespace: "urn:demo".into(),
            prefix: "d".into(),
            rpcs: vec![RpcSchema {
                name: "poke".into(),
                input: vec![SchemaNode::leaf("who", YangType::String, true)],
                output: vec![SchemaNode::leaf("ack", YangType::Boolean, false)],
            }],
            data: schema(),
        };
        let y = m.to_yang();
        assert!(y.contains("module demo"));
        assert!(y.contains("rpc poke"));
        assert!(y.contains("mandatory true"));
        assert!(y.contains("key \"name\""));
        assert!(y.contains("enumeration"));
    }
}
