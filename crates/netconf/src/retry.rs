//! Retry scheduling for NETCONF RPCs: exponential backoff with a cap and
//! deterministic jitter.
//!
//! The environment drives RPCs in *virtual* time, so delays are plain
//! nanosecond counts (no clocks, no threads) and the jitter must be a
//! pure function of the policy — two runs with the same seed produce the
//! same schedule. The schedule keeps three invariants, property-tested in
//! `tests/prop.rs`:
//!
//! 1. delays are monotone non-decreasing in the attempt number;
//! 2. every delay is ≤ `max_ns`;
//! 3. jitter only stretches a delay upward, by at most `jitter` × base
//!    (before the cap).

/// Exponential backoff policy. All durations are virtual nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base_ns: u64,
    /// Ceiling for any single delay.
    pub max_ns: u64,
    /// Upward jitter fraction in `0.0..=1.0` (clamped on construction).
    pub jitter: f64,
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy with explicit parameters. `jitter` is clamped to
    /// `0.0..=1.0` so the monotonicity invariant holds (doubling always
    /// outruns the jitter).
    pub fn new(base_ns: u64, max_ns: u64, jitter: f64, max_retries: u32, seed: u64) -> RetryPolicy {
        RetryPolicy {
            base_ns: base_ns.max(1),
            max_ns: max_ns.max(base_ns.max(1)),
            jitter: jitter.clamp(0.0, 1.0),
            max_retries,
            seed,
        }
    }

    /// Default for the environment: 10 ms base doubling to an 80 ms cap,
    /// 10% jitter, 4 retries.
    pub fn standard(seed: u64) -> RetryPolicy {
        RetryPolicy::new(10_000_000, 80_000_000, 0.1, 4, seed)
    }

    /// Total attempts (first try + retries).
    pub fn attempts(&self) -> u32 {
        self.max_retries + 1
    }

    /// The undithered exponential delay for retry `attempt` (0-based):
    /// `base · 2^attempt`, capped at `max_ns`.
    pub fn raw_delay_ns(&self, attempt: u32) -> u64 {
        if attempt >= 63 {
            return self.max_ns;
        }
        self.base_ns
            .saturating_mul(1u64 << attempt)
            .min(self.max_ns)
    }

    /// The jittered delay for retry `attempt`: the raw delay stretched
    /// upward by up to `jitter` of itself, then clamped to `max_ns`.
    pub fn delay_ns(&self, attempt: u32) -> u64 {
        let raw = self.raw_delay_ns(attempt);
        let unit = unit_interval(splitmix64(
            self.seed ^ (u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ));
        let stretch = (raw as f64 * self.jitter * unit) as u64;
        raw.saturating_add(stretch).min(self.max_ns)
    }

    /// The whole schedule, one delay per retry.
    pub fn schedule(&self) -> Vec<u64> {
        (0..self.max_retries).map(|a| self.delay_ns(a)).collect()
    }
}

/// SplitMix64: a tiny, high-quality bit mixer. Pure, so the jitter stream
/// is a function of (seed, attempt) only.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a u64 onto `[0, 1)`.
fn unit_interval(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_schedule_doubles_then_caps() {
        let p = RetryPolicy::new(10, 80, 0.0, 6, 1);
        let raws: Vec<u64> = (0..6).map(|a| p.raw_delay_ns(a)).collect();
        assert_eq!(raws, vec![10, 20, 40, 80, 80, 80]);
    }

    #[test]
    fn jitter_stays_within_bounds_and_cap() {
        let p = RetryPolicy::new(1_000, 8_000, 0.5, 8, 42);
        for a in 0..8 {
            let raw = p.raw_delay_ns(a);
            let d = p.delay_ns(a);
            assert!(d >= raw, "attempt {a}: {d} < raw {raw}");
            assert!(d <= (raw + raw / 2).min(p.max_ns), "attempt {a}: {d}");
        }
    }

    #[test]
    fn schedule_is_monotone_and_deterministic() {
        let p = RetryPolicy::standard(7);
        let s1 = p.schedule();
        let s2 = RetryPolicy::standard(7).schedule();
        assert_eq!(s1, s2);
        assert!(s1.windows(2).all(|w| w[0] <= w[1]), "{s1:?}");
        // A different seed gives a different (but still valid) schedule.
        let s3 = RetryPolicy::standard(8).schedule();
        assert_ne!(s1, s3);
    }

    #[test]
    fn extreme_attempts_do_not_overflow() {
        let p = RetryPolicy::new(u64::MAX / 2, u64::MAX, 1.0, 200, 3);
        assert_eq!(p.delay_ns(200), u64::MAX);
        assert_eq!(p.delay_ns(64), u64::MAX);
    }
}
