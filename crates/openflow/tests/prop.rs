//! Property tests for OpenFlow: wire round trips under arbitrary field
//! values, decoder robustness, match/table invariants.

use escape_netem::Time;
use escape_openflow::table::FlowEntry;
use escape_openflow::{port, Action, FlowModCommand, FlowTable, Match, OfMessage, PacketInReason};
use escape_packet::{FlowKey, MacAddr, PacketBuilder};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_match() -> impl Strategy<Value = Match> {
    (
        proptest::option::of(any::<u16>()),
        proptest::option::of(arb_mac()),
        proptest::option::of(arb_mac()),
        proptest::option::of(any::<u16>()),
        proptest::option::of((arb_ip(), 0u8..=32)),
        proptest::option::of((arb_ip(), 0u8..=32)),
        proptest::option::of(any::<u16>()),
        proptest::option::of(any::<u16>()),
        proptest::option::of(any::<u8>()),
    )
        .prop_map(
            |(in_port, dl_src, dl_dst, dl_type, nw_src, nw_dst, tp_src, tp_dst, nw_proto)| Match {
                in_port,
                dl_src,
                dl_dst,
                dl_vlan: None,
                dl_type,
                nw_tos: None,
                nw_proto,
                nw_src,
                nw_dst,
                tp_src,
                tp_dst,
            },
        )
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u16>().prop_map(Action::out),
            arb_mac().prop_map(Action::SetDlSrc),
            arb_mac().prop_map(Action::SetDlDst),
            arb_ip().prop_map(Action::SetNwSrc),
            arb_ip().prop_map(Action::SetNwDst),
            any::<u16>().prop_map(Action::SetTpDst),
        ],
        0..6,
    )
}

/// A nw_src/nw_dst prefix of length 0 is semantically fully wildcarded
/// and decodes as `None`; normalize for round-trip comparison.
fn normalize(mut m: Match) -> Match {
    if matches!(m.nw_src, Some((_, 0))) {
        m.nw_src = None;
    }
    if matches!(m.nw_dst, Some((_, 0))) {
        m.nw_dst = None;
    }
    // Address bits outside the prefix are not carried by the wire
    // format's wildcard semantics; mask them for comparison.
    let mask_net = |o: Option<(Ipv4Addr, u8)>| {
        o.map(|(a, l)| {
            let mask = if l == 0 {
                0
            } else {
                u32::MAX << (32 - l as u32)
            };
            (Ipv4Addr::from(u32::from(a) & mask), l)
        })
    };
    m.nw_src = mask_net(m.nw_src);
    m.nw_dst = mask_net(m.nw_dst);
    m
}

/// One step of the differential cache-vs-walk exercise. Ports and
/// priorities are drawn from small ranges so lookups repeat (exercising
/// cache hits) and flow-mods actually touch installed entries.
#[derive(Debug, Clone)]
enum TableOp {
    Lookup {
        dport: u16,
        in_port: u16,
    },
    Add {
        dport: u16,
        in_port: Option<u16>,
        prio: u16,
        cookie: u64,
    },
    Modify {
        dport: u16,
        prio: u16,
        strict: bool,
        out: u16,
    },
    Delete {
        dport: u16,
        prio: u16,
        strict: bool,
        cookie: u64,
    },
}

fn arb_table_op() -> impl Strategy<Value = TableOp> {
    // The lookup arm repeats so op streams are lookup-heavy (the
    // vendored prop_oneof! has no weights): repeats are what exercise
    // cache hits between the mutating ops.
    let lookup =
        || (0u16..8, 0u16..4).prop_map(|(dport, in_port)| TableOp::Lookup { dport, in_port });
    prop_oneof![
        lookup(),
        lookup(),
        lookup(),
        lookup(),
        (0u16..8, proptest::option::of(0u16..4), 0u16..8, 0u64..4).prop_map(
            |(dport, in_port, prio, cookie)| TableOp::Add {
                dport,
                in_port,
                prio,
                cookie
            }
        ),
        (0u16..8, 0u16..8, any::<bool>(), any::<u16>()).prop_map(|(dport, prio, strict, out)| {
            TableOp::Modify {
                dport,
                prio,
                strict,
                out,
            }
        }),
        (0u16..8, 0u16..8, any::<bool>(), 0u64..4).prop_map(|(dport, prio, strict, cookie)| {
            TableOp::Delete {
                dport,
                prio,
                strict,
                cookie,
            }
        }),
    ]
}

/// An IPv4/UDP match on destination port `dport` (and optionally the
/// ingress port) — shaped so the generated lookup frames can hit it.
fn match_for(dport: u16, in_port: Option<u16>) -> Match {
    let mut m = Match::any().with_dl_type(0x0800);
    m.tp_dst = Some(dport);
    m.in_port = in_port;
    m
}

fn entry_for(dport: u16, in_port: Option<u16>, prio: u16, cookie: u64) -> FlowEntry {
    let mut e = FlowEntry::new(
        match_for(dport, in_port),
        prio,
        vec![Action::out(1)],
        Time::ZERO,
    );
    e.cookie = cookie;
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn match_wire_roundtrip(m in arb_match()) {
        let m = normalize(m);
        let mut buf = Vec::new();
        m.encode(&mut buf);
        let (back, used) = Match::decode(&buf).unwrap();
        prop_assert_eq!(used, 40);
        prop_assert_eq!(normalize(back), m);
    }

    #[test]
    fn flow_mod_wire_roundtrip(
        m in arb_match(),
        actions in arb_actions(),
        cookie in any::<u64>(),
        prio in any::<u16>(),
        idle in any::<u16>(),
        hard in any::<u16>(),
        xid in any::<u32>(),
    ) {
        let msg = OfMessage::FlowMod {
            match_: normalize(m),
            cookie,
            command: FlowModCommand::Add,
            idle_timeout: idle,
            hard_timeout: hard,
            priority: prio,
            buffer_id: 0xffff_ffff,
            out_port: 0xffff,
            flags: 0,
            actions,
        };
        let wire = msg.encode(xid);
        let (back, back_xid) = OfMessage::decode(&wire).unwrap();
        prop_assert_eq!(back_xid, xid);
        match (msg, back) {
            (
                OfMessage::FlowMod { match_: m1, actions: a1, cookie: c1, .. },
                OfMessage::FlowMod { match_: m2, actions: a2, cookie: c2, .. },
            ) => {
                prop_assert_eq!(normalize(m1), normalize(m2));
                prop_assert_eq!(a1, a2);
                prop_assert_eq!(c1, c2);
            }
            _ => prop_assert!(false, "variant changed in roundtrip"),
        }
    }

    #[test]
    fn packet_in_roundtrip(
        buffer_id in any::<u32>(),
        in_port in any::<u16>(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
        xid in any::<u32>(),
    ) {
        let msg = OfMessage::PacketIn {
            buffer_id,
            total_len: data.len() as u16,
            in_port,
            reason: PacketInReason::NoMatch,
            data: bytes::Bytes::from(data),
        };
        let wire = msg.encode(xid);
        let (back, _) = OfMessage::decode(&wire).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = OfMessage::decode(&data);
        let _ = Match::decode(&data);
        let _ = Action::decode_list(&data);
    }

    /// Corrupting any single byte of an encoded message never panics the
    /// decoder.
    #[test]
    fn bitflip_robustness(
        m in arb_match(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let msg = OfMessage::FlowMod {
            match_: m,
            cookie: 1,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 1,
            buffer_id: 0xffff_ffff,
            out_port: 0xffff,
            flags: 0,
            actions: vec![Action::out(1)],
        };
        let mut wire = msg.encode(1);
        let pos = ((wire.len() - 1) as f64 * pos_frac) as usize;
        wire[pos] ^= flip;
        let _ = OfMessage::decode(&wire);
    }

    /// `Match::exact_from_key` always matches its own source frame, and
    /// `matches` is consistent with `is_subset_of`: if a ⊆ b and a
    /// matches a frame... then b matches it too.
    #[test]
    fn subset_implies_match_superset(
        sport in any::<u16>(),
        dport in any::<u16>(),
        in_port in any::<u16>(),
        src in arb_ip(),
        dst in arb_ip(),
    ) {
        let frame = PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            src,
            dst,
            sport,
            dport,
            bytes::Bytes::from_static(b"p"),
        );
        let key = FlowKey::extract(&frame).unwrap();
        let exact = Match::exact_from_key(&key, in_port);
        prop_assert!(exact.matches(&key, in_port));
        let broader = Match::any().with_dl_type(0x0800).with_nw_dst(dst, 32);
        prop_assert!(exact.is_subset_of(&broader));
        prop_assert!(broader.matches(&key, in_port), "superset must match too");
    }

    /// Differential: a cache-enabled table and a cache-disabled table fed
    /// the *same* randomized op sequence — lookups interleaved with
    /// add/modify/delete flow-mods — agree on every lookup result (same
    /// winning entry index into identically-ordered tables) and end with
    /// byte-equal entries, per-entry packet/byte counters included.
    #[test]
    fn cached_lookup_is_equivalent_to_full_walk(
        seeds in proptest::collection::vec(
            (0u16..8, proptest::option::of(0u16..4), 0u16..8, 0u64..4),
            0..12,
        ),
        ops in proptest::collection::vec(arb_table_op(), 1..80),
    ) {
        let mut cached = FlowTable::new();
        let mut walked = FlowTable::new();
        walked.set_cache_enabled(false);
        for (dport, in_port, prio, cookie) in seeds {
            cached.add(entry_for(dport, in_port, prio, cookie));
            walked.add(entry_for(dport, in_port, prio, cookie));
        }
        for op in ops {
            match op {
                TableOp::Lookup { dport, in_port } => {
                    let frame = PacketBuilder::udp(
                        MacAddr::from_id(1),
                        MacAddr::from_id(2),
                        Ipv4Addr::new(10, 0, 0, 1),
                        Ipv4Addr::new(10, 0, 0, 2),
                        7,
                        dport,
                        bytes::Bytes::from_static(b"x"),
                    );
                    let key = FlowKey::extract(&frame).unwrap();
                    let a = cached.lookup_idx(&key, in_port, 60, Time::ZERO);
                    let b = walked.lookup_idx(&key, in_port, 60, Time::ZERO);
                    prop_assert_eq!(a, b, "cached and walked lookups disagree");
                }
                TableOp::Add { dport, in_port, prio, cookie } => {
                    cached.add(entry_for(dport, in_port, prio, cookie));
                    walked.add(entry_for(dport, in_port, prio, cookie));
                }
                TableOp::Modify { dport, prio, strict, out } => {
                    let m = match_for(dport, None);
                    let actions = vec![Action::out(out)];
                    let a = cached.modify(&m, prio, strict, &actions);
                    let b = walked.modify(&m, prio, strict, &actions);
                    prop_assert_eq!(a, b);
                }
                TableOp::Delete { dport, prio, strict, cookie } => {
                    let m = match_for(dport, None);
                    let a = cached.delete(&m, prio, strict, port::NONE, cookie);
                    let b = walked.delete(&m, prio, strict, port::NONE, cookie);
                    prop_assert_eq!(a.len(), b.len());
                }
            }
        }
        prop_assert_eq!(cached.matched, walked.matched);
        prop_assert_eq!(cached.missed, walked.missed);
        prop_assert_eq!(cached.len(), walked.len());
        for (a, b) in cached.entries().iter().zip(walked.entries()) {
            prop_assert_eq!(&a.match_, &b.match_);
            prop_assert_eq!(a.priority, b.priority);
            prop_assert_eq!(a.cookie, b.cookie);
            prop_assert_eq!(&a.actions, &b.actions);
            prop_assert_eq!(a.packet_count, b.packet_count, "per-entry packet counters diverged");
            prop_assert_eq!(a.byte_count, b.byte_count, "per-entry byte counters diverged");
        }
    }

    /// Flow-table counters: matched + missed equals total lookups.
    #[test]
    fn table_lookup_accounting(
        entries in proptest::collection::vec((arb_match(), any::<u16>()), 0..20),
        lookups in proptest::collection::vec((any::<u16>(), any::<u16>()), 1..50),
    ) {
        let mut t = FlowTable::new();
        for (m, p) in entries {
            t.add(FlowEntry::new(m, p, vec![Action::out(1)], Time::ZERO));
        }
        for (dport, in_port) in &lookups {
            let frame = PacketBuilder::udp(
                MacAddr::from_id(1),
                MacAddr::from_id(2),
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                7,
                *dport,
                bytes::Bytes::from_static(b"x"),
            );
            let key = FlowKey::extract(&frame).unwrap();
            let _ = t.lookup(&key, *in_port, 60, Time::ZERO);
        }
        prop_assert_eq!(t.matched + t.missed, lookups.len() as u64);
    }
}
