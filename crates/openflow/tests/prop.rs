//! Property tests for OpenFlow: wire round trips under arbitrary field
//! values, decoder robustness, match/table invariants.

use escape_netem::Time;
use escape_openflow::table::FlowEntry;
use escape_openflow::{Action, FlowModCommand, FlowTable, Match, OfMessage, PacketInReason};
use escape_packet::{FlowKey, MacAddr, PacketBuilder};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_match() -> impl Strategy<Value = Match> {
    (
        proptest::option::of(any::<u16>()),
        proptest::option::of(arb_mac()),
        proptest::option::of(arb_mac()),
        proptest::option::of(any::<u16>()),
        proptest::option::of((arb_ip(), 0u8..=32)),
        proptest::option::of((arb_ip(), 0u8..=32)),
        proptest::option::of(any::<u16>()),
        proptest::option::of(any::<u16>()),
        proptest::option::of(any::<u8>()),
    )
        .prop_map(
            |(in_port, dl_src, dl_dst, dl_type, nw_src, nw_dst, tp_src, tp_dst, nw_proto)| Match {
                in_port,
                dl_src,
                dl_dst,
                dl_vlan: None,
                dl_type,
                nw_tos: None,
                nw_proto,
                nw_src,
                nw_dst,
                tp_src,
                tp_dst,
            },
        )
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u16>().prop_map(Action::out),
            arb_mac().prop_map(Action::SetDlSrc),
            arb_mac().prop_map(Action::SetDlDst),
            arb_ip().prop_map(Action::SetNwSrc),
            arb_ip().prop_map(Action::SetNwDst),
            any::<u16>().prop_map(Action::SetTpDst),
        ],
        0..6,
    )
}

/// A nw_src/nw_dst prefix of length 0 is semantically fully wildcarded
/// and decodes as `None`; normalize for round-trip comparison.
fn normalize(mut m: Match) -> Match {
    if matches!(m.nw_src, Some((_, 0))) {
        m.nw_src = None;
    }
    if matches!(m.nw_dst, Some((_, 0))) {
        m.nw_dst = None;
    }
    // Address bits outside the prefix are not carried by the wire
    // format's wildcard semantics; mask them for comparison.
    let mask_net = |o: Option<(Ipv4Addr, u8)>| {
        o.map(|(a, l)| {
            let mask = if l == 0 {
                0
            } else {
                u32::MAX << (32 - l as u32)
            };
            (Ipv4Addr::from(u32::from(a) & mask), l)
        })
    };
    m.nw_src = mask_net(m.nw_src);
    m.nw_dst = mask_net(m.nw_dst);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn match_wire_roundtrip(m in arb_match()) {
        let m = normalize(m);
        let mut buf = Vec::new();
        m.encode(&mut buf);
        let (back, used) = Match::decode(&buf).unwrap();
        prop_assert_eq!(used, 40);
        prop_assert_eq!(normalize(back), m);
    }

    #[test]
    fn flow_mod_wire_roundtrip(
        m in arb_match(),
        actions in arb_actions(),
        cookie in any::<u64>(),
        prio in any::<u16>(),
        idle in any::<u16>(),
        hard in any::<u16>(),
        xid in any::<u32>(),
    ) {
        let msg = OfMessage::FlowMod {
            match_: normalize(m),
            cookie,
            command: FlowModCommand::Add,
            idle_timeout: idle,
            hard_timeout: hard,
            priority: prio,
            buffer_id: 0xffff_ffff,
            out_port: 0xffff,
            flags: 0,
            actions,
        };
        let wire = msg.encode(xid);
        let (back, back_xid) = OfMessage::decode(&wire).unwrap();
        prop_assert_eq!(back_xid, xid);
        match (msg, back) {
            (
                OfMessage::FlowMod { match_: m1, actions: a1, cookie: c1, .. },
                OfMessage::FlowMod { match_: m2, actions: a2, cookie: c2, .. },
            ) => {
                prop_assert_eq!(normalize(m1), normalize(m2));
                prop_assert_eq!(a1, a2);
                prop_assert_eq!(c1, c2);
            }
            _ => prop_assert!(false, "variant changed in roundtrip"),
        }
    }

    #[test]
    fn packet_in_roundtrip(
        buffer_id in any::<u32>(),
        in_port in any::<u16>(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
        xid in any::<u32>(),
    ) {
        let msg = OfMessage::PacketIn {
            buffer_id,
            total_len: data.len() as u16,
            in_port,
            reason: PacketInReason::NoMatch,
            data: bytes::Bytes::from(data),
        };
        let wire = msg.encode(xid);
        let (back, _) = OfMessage::decode(&wire).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = OfMessage::decode(&data);
        let _ = Match::decode(&data);
        let _ = Action::decode_list(&data);
    }

    /// Corrupting any single byte of an encoded message never panics the
    /// decoder.
    #[test]
    fn bitflip_robustness(
        m in arb_match(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let msg = OfMessage::FlowMod {
            match_: m,
            cookie: 1,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 1,
            buffer_id: 0xffff_ffff,
            out_port: 0xffff,
            flags: 0,
            actions: vec![Action::out(1)],
        };
        let mut wire = msg.encode(1);
        let pos = ((wire.len() - 1) as f64 * pos_frac) as usize;
        wire[pos] ^= flip;
        let _ = OfMessage::decode(&wire);
    }

    /// `Match::exact_from_key` always matches its own source frame, and
    /// `matches` is consistent with `is_subset_of`: if a ⊆ b and a
    /// matches a frame... then b matches it too.
    #[test]
    fn subset_implies_match_superset(
        sport in any::<u16>(),
        dport in any::<u16>(),
        in_port in any::<u16>(),
        src in arb_ip(),
        dst in arb_ip(),
    ) {
        let frame = PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            src,
            dst,
            sport,
            dport,
            bytes::Bytes::from_static(b"p"),
        );
        let key = FlowKey::extract(&frame).unwrap();
        let exact = Match::exact_from_key(&key, in_port);
        prop_assert!(exact.matches(&key, in_port));
        let broader = Match::any().with_dl_type(0x0800).with_nw_dst(dst, 32);
        prop_assert!(exact.is_subset_of(&broader));
        prop_assert!(broader.matches(&key, in_port), "superset must match too");
    }

    /// Flow-table counters: matched + missed equals total lookups.
    #[test]
    fn table_lookup_accounting(
        entries in proptest::collection::vec((arb_match(), any::<u16>()), 0..20),
        lookups in proptest::collection::vec((any::<u16>(), any::<u16>()), 1..50),
    ) {
        let mut t = FlowTable::new();
        for (m, p) in entries {
            t.add(FlowEntry::new(m, p, vec![Action::out(1)], Time::ZERO));
        }
        for (dport, in_port) in &lookups {
            let frame = PacketBuilder::udp(
                MacAddr::from_id(1),
                MacAddr::from_id(2),
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                7,
                *dport,
                bytes::Bytes::from_static(b"x"),
            );
            let key = FlowKey::extract(&frame).unwrap();
            let _ = t.lookup(&key, *in_port, 60, Time::ZERO);
        }
        prop_assert_eq!(t.matched + t.missed, lookups.len() as u64);
    }
}
