//! OpenFlow 1.0 message framing: real binary wire layout.
//!
//! Every message starts with the 8-byte `ofp_header`:
//! `version(1)=0x01, type(1), length(2), xid(4)`.

use crate::action::Action;
use crate::ofmatch::Match;
use bytes::Bytes;
use escape_packet::MacAddr;

/// OpenFlow protocol version implemented.
pub const OFP_VERSION: u8 = 0x01;
/// ofp_header length.
pub const HEADER_LEN: usize = 8;

/// Wire decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    Truncated,
    BadVersion(u8),
    UnknownType(u8),
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated OpenFlow message"),
            WireError::BadVersion(v) => write!(f, "unsupported OpenFlow version {v:#x}"),
            WireError::UnknownType(t) => write!(f, "unknown OpenFlow message type {t}"),
            WireError::Malformed(w) => write!(f, "malformed OpenFlow message: {w}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why a packet was punted to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketInReason {
    NoMatch,
    Action,
}

/// `ofp_flow_mod` commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowModCommand {
    Add,
    Modify,
    ModifyStrict,
    Delete,
    DeleteStrict,
}

impl FlowModCommand {
    fn to_u16(self) -> u16 {
        match self {
            FlowModCommand::Add => 0,
            FlowModCommand::Modify => 1,
            FlowModCommand::ModifyStrict => 2,
            FlowModCommand::Delete => 3,
            FlowModCommand::DeleteStrict => 4,
        }
    }

    fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            0 => FlowModCommand::Add,
            1 => FlowModCommand::Modify,
            2 => FlowModCommand::ModifyStrict,
            3 => FlowModCommand::Delete,
            4 => FlowModCommand::DeleteStrict,
            _ => return None,
        })
    }
}

/// Flow-mod flag: send a FlowRemoved when the entry expires.
pub const OFPFF_SEND_FLOW_REM: u16 = 1;

/// A physical port description inside FeaturesReply (trimmed
/// `ofp_phy_port`: number, MAC, name; config/state/features zeroed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDesc {
    pub port_no: u16,
    pub hw_addr: MacAddr,
    pub name: String,
}

/// Per-flow statistics carried in a flow-stats reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowStats {
    pub match_: Match,
    pub priority: u16,
    pub cookie: u64,
    pub packet_count: u64,
    pub byte_count: u64,
    pub duration_ns: u64,
    pub actions: Vec<Action>,
}

/// Per-port statistics carried in a port-stats reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortStats {
    pub port_no: u16,
    pub rx_packets: u64,
    pub tx_packets: u64,
    pub rx_bytes: u64,
    pub tx_bytes: u64,
    pub rx_dropped: u64,
    pub tx_dropped: u64,
}

/// The OpenFlow 1.0 messages ESCAPE's control loop uses.
#[derive(Debug, Clone, PartialEq)]
pub enum OfMessage {
    Hello,
    Error {
        err_type: u16,
        code: u16,
        data: Vec<u8>,
    },
    EchoRequest(Vec<u8>),
    EchoReply(Vec<u8>),
    FeaturesRequest,
    FeaturesReply {
        datapath_id: u64,
        n_buffers: u32,
        n_tables: u8,
        ports: Vec<PortDesc>,
    },
    PacketIn {
        buffer_id: u32,
        total_len: u16,
        in_port: u16,
        reason: PacketInReason,
        data: Bytes,
    },
    PacketOut {
        buffer_id: u32,
        in_port: u16,
        actions: Vec<Action>,
        data: Bytes,
    },
    FlowMod {
        match_: Match,
        cookie: u64,
        command: FlowModCommand,
        idle_timeout: u16,
        hard_timeout: u16,
        priority: u16,
        buffer_id: u32,
        out_port: u16,
        flags: u16,
        actions: Vec<Action>,
    },
    FlowRemoved {
        match_: Match,
        cookie: u64,
        priority: u16,
        reason: u8,
        duration_ns: u64,
        packet_count: u64,
        byte_count: u64,
    },
    BarrierRequest,
    BarrierReply,
    FlowStatsRequest {
        match_: Match,
        out_port: u16,
    },
    FlowStatsReply(Vec<FlowStats>),
    PortStatsRequest {
        port_no: u16,
    },
    PortStatsReply(Vec<PortStats>),
}

/// `ofp_type` codes.
mod ty {
    pub const HELLO: u8 = 0;
    pub const ERROR: u8 = 1;
    pub const ECHO_REQUEST: u8 = 2;
    pub const ECHO_REPLY: u8 = 3;
    pub const FEATURES_REQUEST: u8 = 5;
    pub const FEATURES_REPLY: u8 = 6;
    pub const PACKET_IN: u8 = 10;
    pub const FLOW_REMOVED: u8 = 11;
    pub const PACKET_OUT: u8 = 13;
    pub const FLOW_MOD: u8 = 14;
    pub const STATS_REQUEST: u8 = 16;
    pub const STATS_REPLY: u8 = 17;
    pub const BARRIER_REQUEST: u8 = 18;
    pub const BARRIER_REPLY: u8 = 19;
}

const OFPST_FLOW: u16 = 1;
const OFPST_PORT: u16 = 4;

impl OfMessage {
    fn type_code(&self) -> u8 {
        match self {
            OfMessage::Hello => ty::HELLO,
            OfMessage::Error { .. } => ty::ERROR,
            OfMessage::EchoRequest(_) => ty::ECHO_REQUEST,
            OfMessage::EchoReply(_) => ty::ECHO_REPLY,
            OfMessage::FeaturesRequest => ty::FEATURES_REQUEST,
            OfMessage::FeaturesReply { .. } => ty::FEATURES_REPLY,
            OfMessage::PacketIn { .. } => ty::PACKET_IN,
            OfMessage::PacketOut { .. } => ty::PACKET_OUT,
            OfMessage::FlowMod { .. } => ty::FLOW_MOD,
            OfMessage::FlowRemoved { .. } => ty::FLOW_REMOVED,
            OfMessage::BarrierRequest => ty::BARRIER_REQUEST,
            OfMessage::BarrierReply => ty::BARRIER_REPLY,
            OfMessage::FlowStatsRequest { .. } | OfMessage::PortStatsRequest { .. } => {
                ty::STATS_REQUEST
            }
            OfMessage::FlowStatsReply(_) | OfMessage::PortStatsReply(_) => ty::STATS_REPLY,
        }
    }

    /// Serializes the message with the given transaction id.
    pub fn encode(&self, xid: u32) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        b.push(OFP_VERSION);
        b.push(self.type_code());
        b.extend_from_slice(&[0, 0]); // length placeholder
        b.extend_from_slice(&xid.to_be_bytes());
        match self {
            OfMessage::Hello
            | OfMessage::FeaturesRequest
            | OfMessage::BarrierRequest
            | OfMessage::BarrierReply => {}
            OfMessage::Error {
                err_type,
                code,
                data,
            } => {
                b.extend_from_slice(&err_type.to_be_bytes());
                b.extend_from_slice(&code.to_be_bytes());
                b.extend_from_slice(data);
            }
            OfMessage::EchoRequest(d) | OfMessage::EchoReply(d) => b.extend_from_slice(d),
            OfMessage::FeaturesReply {
                datapath_id,
                n_buffers,
                n_tables,
                ports,
            } => {
                b.extend_from_slice(&datapath_id.to_be_bytes());
                b.extend_from_slice(&n_buffers.to_be_bytes());
                b.push(*n_tables);
                b.extend_from_slice(&[0u8; 3]); // pad
                b.extend_from_slice(&0u32.to_be_bytes()); // capabilities
                b.extend_from_slice(&0u32.to_be_bytes()); // actions
                for p in ports {
                    b.extend_from_slice(&p.port_no.to_be_bytes());
                    b.extend_from_slice(&p.hw_addr.0);
                    let mut name = [0u8; 16];
                    let n = p.name.as_bytes();
                    name[..n.len().min(15)].copy_from_slice(&n[..n.len().min(15)]);
                    b.extend_from_slice(&name);
                    b.extend_from_slice(&[0u8; 24]); // config..peer features
                }
            }
            OfMessage::PacketIn {
                buffer_id,
                total_len,
                in_port,
                reason,
                data,
            } => {
                b.extend_from_slice(&buffer_id.to_be_bytes());
                b.extend_from_slice(&total_len.to_be_bytes());
                b.extend_from_slice(&in_port.to_be_bytes());
                b.push(match reason {
                    PacketInReason::NoMatch => 0,
                    PacketInReason::Action => 1,
                });
                b.push(0); // pad
                b.extend_from_slice(data);
            }
            OfMessage::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            } => {
                b.extend_from_slice(&buffer_id.to_be_bytes());
                b.extend_from_slice(&in_port.to_be_bytes());
                let mut ab = Vec::new();
                Action::encode_list(actions, &mut ab);
                b.extend_from_slice(&(ab.len() as u16).to_be_bytes());
                b.extend_from_slice(&ab);
                b.extend_from_slice(data);
            }
            OfMessage::FlowMod {
                match_,
                cookie,
                command,
                idle_timeout,
                hard_timeout,
                priority,
                buffer_id,
                out_port,
                flags,
                actions,
            } => {
                match_.encode(&mut b);
                b.extend_from_slice(&cookie.to_be_bytes());
                b.extend_from_slice(&command.to_u16().to_be_bytes());
                b.extend_from_slice(&idle_timeout.to_be_bytes());
                b.extend_from_slice(&hard_timeout.to_be_bytes());
                b.extend_from_slice(&priority.to_be_bytes());
                b.extend_from_slice(&buffer_id.to_be_bytes());
                b.extend_from_slice(&out_port.to_be_bytes());
                b.extend_from_slice(&flags.to_be_bytes());
                Action::encode_list(actions, &mut b);
            }
            OfMessage::FlowRemoved {
                match_,
                cookie,
                priority,
                reason,
                duration_ns,
                packet_count,
                byte_count,
            } => {
                match_.encode(&mut b);
                b.extend_from_slice(&cookie.to_be_bytes());
                b.extend_from_slice(&priority.to_be_bytes());
                b.push(*reason);
                b.push(0); // pad
                let secs = (duration_ns / 1_000_000_000) as u32;
                let nsecs = (duration_ns % 1_000_000_000) as u32;
                b.extend_from_slice(&secs.to_be_bytes());
                b.extend_from_slice(&nsecs.to_be_bytes());
                b.extend_from_slice(&0u16.to_be_bytes()); // idle_timeout
                b.extend_from_slice(&[0u8; 2]); // pad
                b.extend_from_slice(&packet_count.to_be_bytes());
                b.extend_from_slice(&byte_count.to_be_bytes());
            }
            OfMessage::FlowStatsRequest { match_, out_port } => {
                b.extend_from_slice(&OFPST_FLOW.to_be_bytes());
                b.extend_from_slice(&0u16.to_be_bytes()); // flags
                match_.encode(&mut b);
                b.push(0xff); // table_id: all
                b.push(0); // pad
                b.extend_from_slice(&out_port.to_be_bytes());
            }
            OfMessage::FlowStatsReply(entries) => {
                b.extend_from_slice(&OFPST_FLOW.to_be_bytes());
                b.extend_from_slice(&0u16.to_be_bytes());
                for e in entries {
                    let start = b.len();
                    b.extend_from_slice(&0u16.to_be_bytes()); // entry length
                    b.push(0); // table_id
                    b.push(0); // pad
                    e.match_.encode(&mut b);
                    let secs = (e.duration_ns / 1_000_000_000) as u32;
                    let nsecs = (e.duration_ns % 1_000_000_000) as u32;
                    b.extend_from_slice(&secs.to_be_bytes());
                    b.extend_from_slice(&nsecs.to_be_bytes());
                    b.extend_from_slice(&e.priority.to_be_bytes());
                    b.extend_from_slice(&0u16.to_be_bytes()); // idle
                    b.extend_from_slice(&0u16.to_be_bytes()); // hard
                    b.extend_from_slice(&[0u8; 6]); // pad
                    b.extend_from_slice(&e.cookie.to_be_bytes());
                    b.extend_from_slice(&e.packet_count.to_be_bytes());
                    b.extend_from_slice(&e.byte_count.to_be_bytes());
                    Action::encode_list(&e.actions, &mut b);
                    let len = (b.len() - start) as u16;
                    b[start..start + 2].copy_from_slice(&len.to_be_bytes());
                }
            }
            OfMessage::PortStatsRequest { port_no } => {
                b.extend_from_slice(&OFPST_PORT.to_be_bytes());
                b.extend_from_slice(&0u16.to_be_bytes());
                b.extend_from_slice(&port_no.to_be_bytes());
                b.extend_from_slice(&[0u8; 6]); // pad
            }
            OfMessage::PortStatsReply(entries) => {
                b.extend_from_slice(&OFPST_PORT.to_be_bytes());
                b.extend_from_slice(&0u16.to_be_bytes());
                for p in entries {
                    b.extend_from_slice(&p.port_no.to_be_bytes());
                    b.extend_from_slice(&[0u8; 6]); // pad
                    b.extend_from_slice(&p.rx_packets.to_be_bytes());
                    b.extend_from_slice(&p.tx_packets.to_be_bytes());
                    b.extend_from_slice(&p.rx_bytes.to_be_bytes());
                    b.extend_from_slice(&p.tx_bytes.to_be_bytes());
                    b.extend_from_slice(&p.rx_dropped.to_be_bytes());
                    b.extend_from_slice(&p.tx_dropped.to_be_bytes());
                }
            }
        }
        let len = b.len() as u16;
        b[2..4].copy_from_slice(&len.to_be_bytes());
        b
    }

    /// Parses one message, returning it and its xid.
    pub fn decode(b: &[u8]) -> Result<(OfMessage, u32), WireError> {
        if b.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if b[0] != OFP_VERSION {
            return Err(WireError::BadVersion(b[0]));
        }
        let msg_ty = b[1];
        let length = u16::from_be_bytes([b[2], b[3]]) as usize;
        if length < HEADER_LEN || b.len() < length {
            return Err(WireError::Truncated);
        }
        let xid = u32::from_be_bytes([b[4], b[5], b[6], b[7]]);
        let body = &b[HEADER_LEN..length];
        let u16at = |o: usize| u16::from_be_bytes([body[o], body[o + 1]]);
        let u32at = |o: usize| u32::from_be_bytes([body[o], body[o + 1], body[o + 2], body[o + 3]]);
        let u64at = |o: usize| {
            let mut x = [0u8; 8];
            x.copy_from_slice(&body[o..o + 8]);
            u64::from_be_bytes(x)
        };
        let msg = match msg_ty {
            ty::HELLO => OfMessage::Hello,
            ty::ERROR => {
                if body.len() < 4 {
                    return Err(WireError::Malformed("error too short"));
                }
                OfMessage::Error {
                    err_type: u16at(0),
                    code: u16at(2),
                    data: body[4..].to_vec(),
                }
            }
            ty::ECHO_REQUEST => OfMessage::EchoRequest(body.to_vec()),
            ty::ECHO_REPLY => OfMessage::EchoReply(body.to_vec()),
            ty::FEATURES_REQUEST => OfMessage::FeaturesRequest,
            ty::FEATURES_REPLY => {
                if body.len() < 24 {
                    return Err(WireError::Malformed("features reply too short"));
                }
                let mut ports = Vec::new();
                let mut off = 24;
                while off + 48 <= body.len() {
                    let port_no = u16at(off);
                    let mut mac = [0u8; 6];
                    mac.copy_from_slice(&body[off + 2..off + 8]);
                    let raw = &body[off + 8..off + 24];
                    let name = raw
                        .iter()
                        .take_while(|&&c| c != 0)
                        .map(|&c| c as char)
                        .collect::<String>();
                    ports.push(PortDesc {
                        port_no,
                        hw_addr: MacAddr(mac),
                        name,
                    });
                    off += 48;
                }
                OfMessage::FeaturesReply {
                    datapath_id: u64at(0),
                    n_buffers: u32at(8),
                    n_tables: body[12],
                    ports,
                }
            }
            ty::PACKET_IN => {
                if body.len() < 10 {
                    return Err(WireError::Malformed("packet-in too short"));
                }
                OfMessage::PacketIn {
                    buffer_id: u32at(0),
                    total_len: u16at(4),
                    in_port: u16at(6),
                    reason: if body[8] == 0 {
                        PacketInReason::NoMatch
                    } else {
                        PacketInReason::Action
                    },
                    data: Bytes::copy_from_slice(&body[10..]),
                }
            }
            ty::PACKET_OUT => {
                if body.len() < 8 {
                    return Err(WireError::Malformed("packet-out too short"));
                }
                let actions_len = u16at(6) as usize;
                if body.len() < 8 + actions_len {
                    return Err(WireError::Malformed("packet-out actions overflow"));
                }
                let actions = Action::decode_list(&body[8..8 + actions_len])
                    .ok_or(WireError::Malformed("bad actions"))?;
                OfMessage::PacketOut {
                    buffer_id: u32at(0),
                    in_port: u16at(4),
                    actions,
                    data: Bytes::copy_from_slice(&body[8 + actions_len..]),
                }
            }
            ty::FLOW_MOD => {
                let (match_, used) =
                    Match::decode(body).ok_or(WireError::Malformed("bad match"))?;
                if body.len() < used + 24 {
                    return Err(WireError::Malformed("flow-mod too short"));
                }
                let o = used;
                let actions = Action::decode_list(&body[o + 24..])
                    .ok_or(WireError::Malformed("bad actions"))?;
                OfMessage::FlowMod {
                    match_,
                    cookie: u64at(o),
                    command: FlowModCommand::from_u16(u16at(o + 8))
                        .ok_or(WireError::Malformed("bad flow-mod command"))?,
                    idle_timeout: u16at(o + 10),
                    hard_timeout: u16at(o + 12),
                    priority: u16at(o + 14),
                    buffer_id: u32at(o + 16),
                    out_port: u16at(o + 20),
                    flags: u16at(o + 22),
                    actions,
                }
            }
            ty::FLOW_REMOVED => {
                let (match_, used) =
                    Match::decode(body).ok_or(WireError::Malformed("bad match"))?;
                if body.len() < used + 40 {
                    return Err(WireError::Malformed("flow-removed too short"));
                }
                let o = used;
                OfMessage::FlowRemoved {
                    match_,
                    cookie: u64at(o),
                    priority: u16at(o + 8),
                    reason: body[o + 10],
                    duration_ns: u32at(o + 12) as u64 * 1_000_000_000 + u32at(o + 16) as u64,
                    packet_count: u64at(o + 24),
                    byte_count: u64at(o + 32),
                }
            }
            ty::BARRIER_REQUEST => OfMessage::BarrierRequest,
            ty::BARRIER_REPLY => OfMessage::BarrierReply,
            ty::STATS_REQUEST => {
                if body.len() < 4 {
                    return Err(WireError::Malformed("stats request too short"));
                }
                match u16at(0) {
                    OFPST_FLOW => {
                        let (match_, used) =
                            Match::decode(&body[4..]).ok_or(WireError::Malformed("bad match"))?;
                        if body.len() < 4 + used + 4 {
                            return Err(WireError::Malformed("flow stats request too short"));
                        }
                        OfMessage::FlowStatsRequest {
                            match_,
                            out_port: u16at(4 + used + 2),
                        }
                    }
                    OFPST_PORT => OfMessage::PortStatsRequest { port_no: u16at(4) },
                    _ => return Err(WireError::Malformed("unsupported stats kind")),
                }
            }
            ty::STATS_REPLY => {
                if body.len() < 4 {
                    return Err(WireError::Malformed("stats reply too short"));
                }
                match u16at(0) {
                    OFPST_FLOW => {
                        let mut entries = Vec::new();
                        let mut off = 4;
                        while off + 4 <= body.len() {
                            let elen = u16at(off) as usize;
                            if elen < 4 || off + elen > body.len() {
                                return Err(WireError::Malformed("bad flow stats entry"));
                            }
                            let e = &body[off..off + elen];
                            let (match_, used) =
                                Match::decode(&e[4..]).ok_or(WireError::Malformed("bad match"))?;
                            let eb = &e[4 + used..];
                            if eb.len() < 44 {
                                return Err(WireError::Malformed("flow stats entry too short"));
                            }
                            let g64 = |o: usize| {
                                let mut x = [0u8; 8];
                                x.copy_from_slice(&eb[o..o + 8]);
                                u64::from_be_bytes(x)
                            };
                            let secs = u32::from_be_bytes([eb[0], eb[1], eb[2], eb[3]]) as u64;
                            let nsecs = u32::from_be_bytes([eb[4], eb[5], eb[6], eb[7]]) as u64;
                            let actions = Action::decode_list(&eb[44..])
                                .ok_or(WireError::Malformed("bad actions"))?;
                            entries.push(FlowStats {
                                match_,
                                priority: u16::from_be_bytes([eb[8], eb[9]]),
                                cookie: g64(20),
                                packet_count: g64(28),
                                byte_count: g64(36),
                                duration_ns: secs * 1_000_000_000 + nsecs,
                                actions,
                            });
                            off += elen;
                        }
                        OfMessage::FlowStatsReply(entries)
                    }
                    OFPST_PORT => {
                        let mut entries = Vec::new();
                        let mut off = 4;
                        while off + 56 <= body.len() {
                            let e = &body[off..off + 56];
                            let g64 = |o: usize| {
                                let mut x = [0u8; 8];
                                x.copy_from_slice(&e[o..o + 8]);
                                u64::from_be_bytes(x)
                            };
                            entries.push(PortStats {
                                port_no: u16::from_be_bytes([e[0], e[1]]),
                                rx_packets: g64(8),
                                tx_packets: g64(16),
                                rx_bytes: g64(24),
                                tx_bytes: g64(32),
                                rx_dropped: g64(40),
                                tx_dropped: g64(48),
                            });
                            off += 56;
                        }
                        OfMessage::PortStatsReply(entries)
                    }
                    _ => return Err(WireError::Malformed("unsupported stats kind")),
                }
            }
            other => return Err(WireError::UnknownType(other)),
        };
        Ok((msg, xid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port;

    fn roundtrip(m: OfMessage) {
        let wire = m.encode(0x1234_5678);
        let (back, xid) = OfMessage::decode(&wire).unwrap();
        assert_eq!(xid, 0x1234_5678);
        assert_eq!(m, back);
        // Declared length must equal actual length.
        assert_eq!(u16::from_be_bytes([wire[2], wire[3]]) as usize, wire.len());
    }

    #[test]
    fn handshake_messages_roundtrip() {
        roundtrip(OfMessage::Hello);
        roundtrip(OfMessage::FeaturesRequest);
        roundtrip(OfMessage::EchoRequest(vec![1, 2, 3]));
        roundtrip(OfMessage::EchoReply(vec![]));
        roundtrip(OfMessage::BarrierRequest);
        roundtrip(OfMessage::BarrierReply);
        roundtrip(OfMessage::Error {
            err_type: 1,
            code: 2,
            data: vec![9, 9],
        });
    }

    #[test]
    fn features_reply_with_ports_roundtrips() {
        roundtrip(OfMessage::FeaturesReply {
            datapath_id: 0xdead_beef_0000_0001,
            n_buffers: 256,
            n_tables: 1,
            ports: vec![
                PortDesc {
                    port_no: 1,
                    hw_addr: MacAddr::from_id(1),
                    name: "s1-eth1".into(),
                },
                PortDesc {
                    port_no: 2,
                    hw_addr: MacAddr::from_id(2),
                    name: "s1-eth2".into(),
                },
            ],
        });
    }

    #[test]
    fn packet_in_out_roundtrip() {
        roundtrip(OfMessage::PacketIn {
            buffer_id: 42,
            total_len: 60,
            in_port: 3,
            reason: PacketInReason::NoMatch,
            data: Bytes::from_static(b"frame-bytes"),
        });
        roundtrip(OfMessage::PacketOut {
            buffer_id: 0xffff_ffff,
            in_port: port::NONE,
            actions: vec![Action::out(port::FLOOD)],
            data: Bytes::from_static(b"frame-bytes"),
        });
    }

    #[test]
    fn flow_mod_roundtrip() {
        roundtrip(OfMessage::FlowMod {
            match_: Match::any()
                .with_in_port(1)
                .with_dl_type(0x0800)
                .with_tp_dst(80),
            cookie: 7,
            command: FlowModCommand::Add,
            idle_timeout: 10,
            hard_timeout: 30,
            priority: 1000,
            buffer_id: 0xffff_ffff,
            out_port: port::NONE,
            flags: OFPFF_SEND_FLOW_REM,
            actions: vec![Action::SetDlDst(MacAddr::from_id(5)), Action::out(2)],
        });
    }

    #[test]
    fn flow_removed_roundtrip() {
        roundtrip(OfMessage::FlowRemoved {
            match_: Match::any().with_dl_type(0x0800),
            cookie: 1,
            priority: 5,
            reason: 0,
            duration_ns: 3_500_000_000,
            packet_count: 11,
            byte_count: 1111,
        });
    }

    #[test]
    fn stats_roundtrip() {
        roundtrip(OfMessage::FlowStatsRequest {
            match_: Match::any(),
            out_port: port::NONE,
        });
        roundtrip(OfMessage::PortStatsRequest { port_no: 0xffff });
        roundtrip(OfMessage::FlowStatsReply(vec![
            FlowStats {
                match_: Match::any().with_tp_dst(80),
                priority: 10,
                cookie: 3,
                packet_count: 100,
                byte_count: 6400,
                duration_ns: 1_000_000,
                actions: vec![Action::out(2)],
            },
            FlowStats {
                match_: Match::any(),
                priority: 0,
                cookie: 0,
                packet_count: 0,
                byte_count: 0,
                duration_ns: 0,
                actions: vec![],
            },
        ]));
        roundtrip(OfMessage::PortStatsReply(vec![PortStats {
            port_no: 1,
            rx_packets: 10,
            tx_packets: 20,
            rx_bytes: 1000,
            tx_bytes: 2000,
            rx_dropped: 1,
            tx_dropped: 2,
        }]));
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert_eq!(OfMessage::decode(&[1, 0, 0]), Err(WireError::Truncated));
        let mut hello = OfMessage::Hello.encode(1);
        hello[0] = 4; // OF 1.3
        assert_eq!(OfMessage::decode(&hello), Err(WireError::BadVersion(4)));
        let mut weird = OfMessage::Hello.encode(1);
        weird[1] = 200;
        assert_eq!(OfMessage::decode(&weird), Err(WireError::UnknownType(200)));
        let mut short = OfMessage::Hello.encode(1);
        short[3] = 200; // declared length > actual
        assert_eq!(OfMessage::decode(&short), Err(WireError::Truncated));
    }
}
