//! The flow table: priority lookup, timeouts, counters.

use crate::action::Action;
use crate::ofmatch::Match;
use crate::port;
use crate::wire::FlowStats;
use escape_netem::Time;
use escape_packet::FlowKey;

/// One installed flow.
#[derive(Debug, Clone)]
pub struct FlowEntry {
    pub match_: Match,
    pub priority: u16,
    pub actions: Vec<Action>,
    pub cookie: u64,
    /// Seconds; 0 disables.
    pub idle_timeout: u16,
    /// Seconds; 0 disables.
    pub hard_timeout: u16,
    /// Notify the controller on expiry (OFPFF_SEND_FLOW_REM).
    pub notify_removed: bool,
    pub packet_count: u64,
    pub byte_count: u64,
    pub installed_at: Time,
    pub last_used: Time,
}

/// Why an entry left the table (`ofp_flow_removed_reason`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovedReason {
    IdleTimeout = 0,
    HardTimeout = 1,
    Delete = 2,
}

/// A single OpenFlow 1.0 flow table.
#[derive(Debug, Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    /// Lookups that matched / missed (table stats).
    pub matched: u64,
    pub missed: u64,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no flows are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the highest-priority entry matching `key` on `in_port`,
    /// updating its counters. Ties break towards the earliest installed
    /// entry (stable order).
    pub fn lookup(
        &mut self,
        key: &FlowKey,
        in_port: u16,
        len: usize,
        now: Time,
    ) -> Option<&FlowEntry> {
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if e.match_.matches(key, in_port)
                && best.is_none_or(|b| e.priority > self.entries[b].priority)
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                self.matched += 1;
                let e = &mut self.entries[i];
                e.packet_count += 1;
                e.byte_count += len as u64;
                e.last_used = now;
                Some(&self.entries[i])
            }
            None => {
                self.missed += 1;
                None
            }
        }
    }

    /// `OFPFC_ADD`: install, replacing an entry with identical match and
    /// priority (per spec).
    pub fn add(&mut self, entry: FlowEntry) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.match_ == entry.match_ && e.priority == entry.priority)
        {
            *e = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// `OFPFC_MODIFY[_STRICT]`: update actions of matching entries;
    /// returns how many changed. Non-strict matches every entry whose
    /// match is a subset of the given one; strict requires equality.
    pub fn modify(
        &mut self,
        match_: &Match,
        priority: u16,
        strict: bool,
        actions: &[Action],
    ) -> usize {
        let mut n = 0;
        for e in &mut self.entries {
            let hit = if strict {
                e.match_ == *match_ && e.priority == priority
            } else {
                e.match_.is_subset_of(match_)
            };
            if hit {
                e.actions = actions.to_vec();
                n += 1;
            }
        }
        n
    }

    /// `OFPFC_DELETE[_STRICT]`: remove matching entries; `out_port`
    /// (unless `port::NONE`) further restricts to entries with an output
    /// action to that port. Returns the removed entries.
    pub fn delete(
        &mut self,
        match_: &Match,
        priority: u16,
        strict: bool,
        out_port: u16,
    ) -> Vec<FlowEntry> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            let m = if strict {
                e.match_ == *match_ && e.priority == priority
            } else {
                e.match_.is_subset_of(match_)
            };
            let port_ok = out_port == port::NONE
                || e.actions
                    .iter()
                    .any(|a| matches!(a, Action::Output { port, .. } if *port == out_port));
            if m && port_ok {
                removed.push(e.clone());
                false
            } else {
                true
            }
        });
        removed
    }

    /// Removes entries whose idle or hard timeout has expired at `now`,
    /// returning them with the reason.
    pub fn expire(&mut self, now: Time) -> Vec<(FlowEntry, RemovedReason)> {
        let mut out = Vec::new();
        self.entries.retain(|e| {
            if e.hard_timeout > 0
                && now.since(e.installed_at) >= e.hard_timeout as u64 * 1_000_000_000
            {
                out.push((e.clone(), RemovedReason::HardTimeout));
                return false;
            }
            if e.idle_timeout > 0 && now.since(e.last_used) >= e.idle_timeout as u64 * 1_000_000_000
            {
                out.push((e.clone(), RemovedReason::IdleTimeout));
                return false;
            }
            true
        });
        out
    }

    /// The soonest future instant at which some entry could expire, used
    /// to arm the switch's expiry timer.
    pub fn next_expiry(&self) -> Option<Time> {
        self.entries
            .iter()
            .filter_map(|e| {
                let hard = (e.hard_timeout > 0)
                    .then(|| e.installed_at.add_ns(e.hard_timeout as u64 * 1_000_000_000));
                let idle = (e.idle_timeout > 0)
                    .then(|| e.last_used.add_ns(e.idle_timeout as u64 * 1_000_000_000));
                match (hard, idle) {
                    (Some(h), Some(i)) => Some(h.min(i)),
                    (h, i) => h.or(i),
                }
            })
            .min()
    }

    /// Flow statistics for entries matching the (non-strict) filter.
    pub fn stats(&self, filter: &Match, out_port: u16, now: Time) -> Vec<FlowStats> {
        self.entries
            .iter()
            .filter(|e| {
                e.match_.is_subset_of(filter)
                    && (out_port == port::NONE
                        || e.actions
                            .iter()
                            .any(|a| matches!(a, Action::Output { port, .. } if *port == out_port)))
            })
            .map(|e| FlowStats {
                match_: e.match_,
                priority: e.priority,
                cookie: e.cookie,
                packet_count: e.packet_count,
                byte_count: e.byte_count,
                duration_ns: now.since(e.installed_at),
                actions: e.actions.clone(),
            })
            .collect()
    }

    /// Iterates entries (diagnostics).
    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }
}

/// Convenience constructor for a flow entry with zeroed counters.
impl FlowEntry {
    pub fn new(match_: Match, priority: u16, actions: Vec<Action>, now: Time) -> FlowEntry {
        FlowEntry {
            match_,
            priority,
            actions,
            cookie: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            notify_removed: false,
            packet_count: 0,
            byte_count: 0,
            installed_at: now,
            last_used: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use escape_packet::{MacAddr, PacketBuilder};
    use std::net::Ipv4Addr;

    fn key(dport: u16) -> FlowKey {
        let f = PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            5,
            dport,
            Bytes::from_static(b"t"),
        );
        FlowKey::extract(&f).unwrap()
    }

    #[test]
    fn priority_wins_over_order() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any(),
            1,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.add(FlowEntry::new(
            Match::any().with_dl_type(0x0800),
            100,
            vec![Action::out(2)],
            Time::ZERO,
        ));
        let e = t.lookup(&key(80), 0, 60, Time::ZERO).unwrap();
        assert_eq!(e.actions, vec![Action::out(2)]);
        assert_eq!(t.matched, 1);
    }

    #[test]
    fn equal_priority_ties_break_to_first_installed() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any(),
            5,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.add(FlowEntry::new(
            Match::any().with_dl_type(0x0800),
            5,
            vec![Action::out(2)],
            Time::ZERO,
        ));
        let e = t.lookup(&key(80), 0, 60, Time::ZERO).unwrap();
        assert_eq!(e.actions, vec![Action::out(1)]);
    }

    #[test]
    fn add_replaces_same_match_and_priority() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any(),
            5,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.add(FlowEntry::new(
            Match::any(),
            5,
            vec![Action::out(9)],
            Time::ZERO,
        ));
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].actions, vec![Action::out(9)]);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any(),
            1,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.lookup(&key(80), 0, 100, Time::from_ms(1));
        t.lookup(&key(81), 0, 50, Time::from_ms(2));
        let e = &t.entries()[0];
        assert_eq!(e.packet_count, 2);
        assert_eq!(e.byte_count, 150);
        assert_eq!(e.last_used, Time::from_ms(2));
    }

    #[test]
    fn miss_counts() {
        let mut t = FlowTable::new();
        assert!(t.lookup(&key(80), 0, 60, Time::ZERO).is_none());
        assert_eq!(t.missed, 1);
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::new();
        let mut e = FlowEntry::new(Match::any(), 1, vec![], Time::ZERO);
        e.hard_timeout = 2;
        t.add(e);
        assert!(t.expire(Time::from_secs(1)).is_empty());
        let removed = t.expire(Time::from_secs(2));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].1, RemovedReason::HardTimeout);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_use() {
        let mut t = FlowTable::new();
        let mut e = FlowEntry::new(Match::any(), 1, vec![], Time::ZERO);
        e.idle_timeout = 1;
        t.add(e);
        // Used at 0.9 s: not expired at 1.0 s.
        t.lookup(&key(80), 0, 60, Time::from_ms(900));
        assert!(t.expire(Time::from_secs(1)).is_empty());
        // Expired at 1.9 s (idle since 0.9 s).
        let removed = t.expire(Time::from_ms(1900));
        assert_eq!(removed[0].1, RemovedReason::IdleTimeout);
    }

    #[test]
    fn next_expiry_is_earliest() {
        let mut t = FlowTable::new();
        let mut a = FlowEntry::new(Match::any(), 1, vec![], Time::ZERO);
        a.hard_timeout = 10;
        let mut b = FlowEntry::new(Match::any().with_dl_type(0x0800), 1, vec![], Time::ZERO);
        b.idle_timeout = 3;
        t.add(a);
        t.add(b);
        assert_eq!(t.next_expiry(), Some(Time::from_secs(3)));
    }

    #[test]
    fn delete_nonstrict_uses_subset() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(80),
            1,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(443),
            1,
            vec![Action::out(2)],
            Time::ZERO,
        ));
        let removed = t.delete(&Match::any(), 0, false, port::NONE);
        assert_eq!(removed.len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn delete_strict_requires_exact() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(80),
            7,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        assert!(t.delete(&Match::any(), 7, true, port::NONE).is_empty());
        assert_eq!(
            t.delete(&Match::any().with_tp_dst(80), 7, true, port::NONE)
                .len(),
            1
        );
    }

    #[test]
    fn delete_filters_by_out_port() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(80),
            1,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(443),
            1,
            vec![Action::out(2)],
            Time::ZERO,
        ));
        let removed = t.delete(&Match::any(), 0, false, 2);
        assert_eq!(removed.len(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn modify_rewrites_actions() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(80),
            1,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        let n = t.modify(&Match::any(), 0, false, &[Action::out(5)]);
        assert_eq!(n, 1);
        assert_eq!(t.entries()[0].actions, vec![Action::out(5)]);
    }

    #[test]
    fn stats_reports_matching_entries() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(80),
            1,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.lookup(&key(80), 0, 64, Time::from_secs(1));
        let stats = t.stats(&Match::any(), port::NONE, Time::from_secs(2));
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].packet_count, 1);
        assert_eq!(stats[0].byte_count, 64);
        assert_eq!(stats[0].duration_ns, 2_000_000_000);
    }
}
