//! The flow table: priority lookup, timeouts, counters — fronted by an
//! exact-match cache ([`crate::cache::FlowCache`]) so repeat flows skip
//! the priority/wildcard walk. Every mutating operation strictly
//! invalidates the cache, keeping the two lookup paths provably equal.

use crate::action::Action;
use crate::cache::FlowCache;
use crate::ofmatch::Match;
use crate::port;
use crate::wire::FlowStats;
use escape_netem::Time;
use escape_packet::FlowKey;
use escape_telemetry::{Counter, Registry};

/// One installed flow.
#[derive(Debug, Clone)]
pub struct FlowEntry {
    pub match_: Match,
    pub priority: u16,
    pub actions: Vec<Action>,
    pub cookie: u64,
    /// Seconds; 0 disables.
    pub idle_timeout: u16,
    /// Seconds; 0 disables.
    pub hard_timeout: u16,
    /// Notify the controller on expiry (OFPFF_SEND_FLOW_REM).
    pub notify_removed: bool,
    pub packet_count: u64,
    pub byte_count: u64,
    pub installed_at: Time,
    pub last_used: Time,
}

/// Why an entry left the table (`ofp_flow_removed_reason`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovedReason {
    IdleTimeout = 0,
    HardTimeout = 1,
    Delete = 2,
}

/// A single OpenFlow 1.0 flow table.
#[derive(Debug)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    /// Lookups that matched / missed (table stats).
    pub matched: u64,
    pub missed: u64,
    /// Exact-match fast path over the walk (see [`crate::cache`]).
    cache: FlowCache,
    /// Telemetry mirrors of the cache stats. Born on a private registry
    /// and re-homed by [`FlowTable::attach_telemetry`] (the
    /// [`crate::switch::Switch`] forwards the environment's registry).
    hits_ctr: Counter,
    misses_ctr: Counter,
    invalidations_ctr: Counter,
}

impl Default for FlowTable {
    fn default() -> Self {
        FlowTable::new()
    }
}

impl FlowTable {
    /// An empty table with the cache enabled.
    pub fn new() -> Self {
        let reg = Registry::new();
        FlowTable {
            entries: Vec::new(),
            matched: 0,
            missed: 0,
            cache: FlowCache::new(),
            hits_ctr: reg.counter("openflow.cache_hits"),
            misses_ctr: reg.counter("openflow.cache_misses"),
            invalidations_ctr: reg.counter("openflow.cache_invalidations"),
        }
    }

    /// Re-homes the cache counters into `registry` so the whole stack's
    /// snapshot (`escape metrics`, `escape ctl metrics`) reports hit
    /// rate without a bench run. Counts recorded before re-homing are
    /// carried over.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        let (h, m, i) = (self.cache.hits, self.cache.misses, self.cache.invalidations);
        self.hits_ctr = registry.counter("openflow.cache_hits");
        self.misses_ctr = registry.counter("openflow.cache_misses");
        self.invalidations_ctr = registry.counter("openflow.cache_invalidations");
        self.hits_ctr.add(h);
        self.misses_ctr.add(m);
        self.invalidations_ctr.add(i);
    }

    /// Turns the exact-match cache on or off (off = every lookup walks
    /// the table, the seed behaviour).
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache.set_enabled(enabled);
    }

    /// Read access to the cache (stats, occupancy).
    pub fn cache(&self) -> &FlowCache {
        &self.cache
    }

    /// Strict invalidation: wipes the cache and mirrors the dropped
    /// entry count into telemetry.
    fn invalidate_cache(&mut self) {
        let before = self.cache.invalidations;
        self.cache.flush();
        self.invalidations_ctr
            .add(self.cache.invalidations - before);
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no flows are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the highest-priority entry matching `key` on `in_port`,
    /// updating its counters. Ties break towards the earliest installed
    /// entry (stable order).
    pub fn lookup(
        &mut self,
        key: &FlowKey,
        in_port: u16,
        len: usize,
        now: Time,
    ) -> Option<&FlowEntry> {
        self.lookup_idx(key, in_port, len, now)
            .map(|i| &self.entries[i])
    }

    /// Core lookup returning the winning entry's index. Cache hits and
    /// table walks bump the *same* per-entry packet/byte counters and
    /// `last_used`, so idle timeouts and flow stats cannot tell the two
    /// paths apart.
    pub fn lookup_idx(
        &mut self,
        key: &FlowKey,
        in_port: u16,
        len: usize,
        now: Time,
    ) -> Option<usize> {
        let cache_key = (*key, in_port);
        let best = match self.cache.get(&cache_key) {
            Some(i) => {
                self.hits_ctr.inc();
                Some(i)
            }
            None => {
                let walked = self.walk(key, in_port);
                if self.cache.enabled() {
                    self.misses_ctr.inc();
                    if let Some(i) = walked {
                        self.cache.insert(cache_key, i);
                    }
                }
                walked
            }
        };
        match best {
            Some(i) => {
                self.matched += 1;
                let e = &mut self.entries[i];
                e.packet_count += 1;
                e.byte_count += len as u64;
                e.last_used = now;
                Some(i)
            }
            None => {
                self.missed += 1;
                None
            }
        }
    }

    /// The full priority/wildcard walk (reference path, no counters).
    fn walk(&self, key: &FlowKey, in_port: u16) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if e.match_.matches(key, in_port)
                && best.is_none_or(|b| e.priority > self.entries[b].priority)
            {
                best = Some(i);
            }
        }
        best
    }

    /// Mutable access to an entry by index (from [`FlowTable::lookup_idx`]).
    pub fn entry_mut(&mut self, idx: usize) -> &mut FlowEntry {
        &mut self.entries[idx]
    }

    /// `OFPFC_ADD`: install, replacing an entry with identical match and
    /// priority (per spec).
    pub fn add(&mut self, entry: FlowEntry) {
        self.invalidate_cache();
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.match_ == entry.match_ && e.priority == entry.priority)
        {
            *e = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// `OFPFC_MODIFY[_STRICT]`: update actions of matching entries;
    /// returns how many changed. Non-strict matches every entry whose
    /// match is a subset of the given one; strict requires equality.
    pub fn modify(
        &mut self,
        match_: &Match,
        priority: u16,
        strict: bool,
        actions: &[Action],
    ) -> usize {
        self.invalidate_cache();
        let mut n = 0;
        for e in &mut self.entries {
            let hit = if strict {
                e.match_ == *match_ && e.priority == priority
            } else {
                e.match_.is_subset_of(match_)
            };
            if hit {
                e.actions = actions.to_vec();
                n += 1;
            }
        }
        n
    }

    /// `OFPFC_DELETE[_STRICT]`: remove matching entries; `out_port`
    /// (unless `port::NONE`) further restricts to entries with an output
    /// action to that port, and `cookie` (unless 0) to entries stamped
    /// with that cookie — the hook the steering layer uses to tear down
    /// or resteer exactly one chain's flows even when matches overlap.
    /// Returns the removed entries.
    pub fn delete(
        &mut self,
        match_: &Match,
        priority: u16,
        strict: bool,
        out_port: u16,
        cookie: u64,
    ) -> Vec<FlowEntry> {
        self.invalidate_cache();
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            let m = if strict {
                e.match_ == *match_ && e.priority == priority
            } else {
                e.match_.is_subset_of(match_)
            };
            let port_ok = out_port == port::NONE
                || e.actions
                    .iter()
                    .any(|a| matches!(a, Action::Output { port, .. } if *port == out_port));
            let cookie_ok = cookie == 0 || e.cookie == cookie;
            if m && port_ok && cookie_ok {
                removed.push(e.clone());
                false
            } else {
                true
            }
        });
        removed
    }

    /// Removes entries whose idle or hard timeout has expired at `now`,
    /// returning them with the reason.
    pub fn expire(&mut self, now: Time) -> Vec<(FlowEntry, RemovedReason)> {
        let mut out = Vec::new();
        self.entries.retain(|e| {
            if e.hard_timeout > 0
                && now.since(e.installed_at) >= e.hard_timeout as u64 * 1_000_000_000
            {
                out.push((e.clone(), RemovedReason::HardTimeout));
                return false;
            }
            if e.idle_timeout > 0 && now.since(e.last_used) >= e.idle_timeout as u64 * 1_000_000_000
            {
                out.push((e.clone(), RemovedReason::IdleTimeout));
                return false;
            }
            true
        });
        if !out.is_empty() {
            // Entry indices shifted: strict invalidation, same as a delete.
            self.invalidate_cache();
        }
        out
    }

    /// The soonest future instant at which some entry could expire, used
    /// to arm the switch's expiry timer.
    pub fn next_expiry(&self) -> Option<Time> {
        self.entries
            .iter()
            .filter_map(|e| {
                let hard = (e.hard_timeout > 0)
                    .then(|| e.installed_at.add_ns(e.hard_timeout as u64 * 1_000_000_000));
                let idle = (e.idle_timeout > 0)
                    .then(|| e.last_used.add_ns(e.idle_timeout as u64 * 1_000_000_000));
                match (hard, idle) {
                    (Some(h), Some(i)) => Some(h.min(i)),
                    (h, i) => h.or(i),
                }
            })
            .min()
    }

    /// Flow statistics for entries matching the (non-strict) filter.
    pub fn stats(&self, filter: &Match, out_port: u16, now: Time) -> Vec<FlowStats> {
        self.entries
            .iter()
            .filter(|e| {
                e.match_.is_subset_of(filter)
                    && (out_port == port::NONE
                        || e.actions
                            .iter()
                            .any(|a| matches!(a, Action::Output { port, .. } if *port == out_port)))
            })
            .map(|e| FlowStats {
                match_: e.match_,
                priority: e.priority,
                cookie: e.cookie,
                packet_count: e.packet_count,
                byte_count: e.byte_count,
                duration_ns: now.since(e.installed_at),
                actions: e.actions.clone(),
            })
            .collect()
    }

    /// Iterates entries (diagnostics).
    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }
}

/// Convenience constructor for a flow entry with zeroed counters.
impl FlowEntry {
    pub fn new(match_: Match, priority: u16, actions: Vec<Action>, now: Time) -> FlowEntry {
        FlowEntry {
            match_,
            priority,
            actions,
            cookie: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            notify_removed: false,
            packet_count: 0,
            byte_count: 0,
            installed_at: now,
            last_used: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use escape_packet::{MacAddr, PacketBuilder};
    use std::net::Ipv4Addr;

    fn key(dport: u16) -> FlowKey {
        let f = PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            5,
            dport,
            Bytes::from_static(b"t"),
        );
        FlowKey::extract(&f).unwrap()
    }

    #[test]
    fn priority_wins_over_order() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any(),
            1,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.add(FlowEntry::new(
            Match::any().with_dl_type(0x0800),
            100,
            vec![Action::out(2)],
            Time::ZERO,
        ));
        let e = t.lookup(&key(80), 0, 60, Time::ZERO).unwrap();
        assert_eq!(e.actions, vec![Action::out(2)]);
        assert_eq!(t.matched, 1);
    }

    #[test]
    fn equal_priority_ties_break_to_first_installed() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any(),
            5,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.add(FlowEntry::new(
            Match::any().with_dl_type(0x0800),
            5,
            vec![Action::out(2)],
            Time::ZERO,
        ));
        let e = t.lookup(&key(80), 0, 60, Time::ZERO).unwrap();
        assert_eq!(e.actions, vec![Action::out(1)]);
    }

    #[test]
    fn add_replaces_same_match_and_priority() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any(),
            5,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.add(FlowEntry::new(
            Match::any(),
            5,
            vec![Action::out(9)],
            Time::ZERO,
        ));
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].actions, vec![Action::out(9)]);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any(),
            1,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.lookup(&key(80), 0, 100, Time::from_ms(1));
        t.lookup(&key(81), 0, 50, Time::from_ms(2));
        let e = &t.entries()[0];
        assert_eq!(e.packet_count, 2);
        assert_eq!(e.byte_count, 150);
        assert_eq!(e.last_used, Time::from_ms(2));
    }

    #[test]
    fn miss_counts() {
        let mut t = FlowTable::new();
        assert!(t.lookup(&key(80), 0, 60, Time::ZERO).is_none());
        assert_eq!(t.missed, 1);
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::new();
        let mut e = FlowEntry::new(Match::any(), 1, vec![], Time::ZERO);
        e.hard_timeout = 2;
        t.add(e);
        assert!(t.expire(Time::from_secs(1)).is_empty());
        let removed = t.expire(Time::from_secs(2));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].1, RemovedReason::HardTimeout);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_use() {
        let mut t = FlowTable::new();
        let mut e = FlowEntry::new(Match::any(), 1, vec![], Time::ZERO);
        e.idle_timeout = 1;
        t.add(e);
        // Used at 0.9 s: not expired at 1.0 s.
        t.lookup(&key(80), 0, 60, Time::from_ms(900));
        assert!(t.expire(Time::from_secs(1)).is_empty());
        // Expired at 1.9 s (idle since 0.9 s).
        let removed = t.expire(Time::from_ms(1900));
        assert_eq!(removed[0].1, RemovedReason::IdleTimeout);
    }

    #[test]
    fn next_expiry_is_earliest() {
        let mut t = FlowTable::new();
        let mut a = FlowEntry::new(Match::any(), 1, vec![], Time::ZERO);
        a.hard_timeout = 10;
        let mut b = FlowEntry::new(Match::any().with_dl_type(0x0800), 1, vec![], Time::ZERO);
        b.idle_timeout = 3;
        t.add(a);
        t.add(b);
        assert_eq!(t.next_expiry(), Some(Time::from_secs(3)));
    }

    #[test]
    fn delete_nonstrict_uses_subset() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(80),
            1,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(443),
            1,
            vec![Action::out(2)],
            Time::ZERO,
        ));
        let removed = t.delete(&Match::any(), 0, false, port::NONE, 0);
        assert_eq!(removed.len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn delete_strict_requires_exact() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(80),
            7,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        assert!(t.delete(&Match::any(), 7, true, port::NONE, 0).is_empty());
        assert_eq!(
            t.delete(&Match::any().with_tp_dst(80), 7, true, port::NONE, 0)
                .len(),
            1
        );
    }

    #[test]
    fn delete_filters_by_out_port() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(80),
            1,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(443),
            1,
            vec![Action::out(2)],
            Time::ZERO,
        ));
        let removed = t.delete(&Match::any(), 0, false, 2, 0);
        assert_eq!(removed.len(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_filters_by_cookie() {
        let mut t = FlowTable::new();
        let mut a = FlowEntry::new(
            Match::any().with_tp_dst(80),
            1,
            vec![Action::out(1)],
            Time::ZERO,
        );
        a.cookie = 7;
        let mut b = FlowEntry::new(
            Match::any().with_tp_dst(443),
            1,
            vec![Action::out(2)],
            Time::ZERO,
        );
        b.cookie = 9;
        t.add(a);
        t.add(b);
        // Cookie-scoped delete under an overlapping wildcard only tears
        // down the one chain's rule.
        let removed = t.delete(&Match::any(), 0, false, port::NONE, 7);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].cookie, 7);
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].cookie, 9);
    }

    #[test]
    fn cached_lookup_matches_walk_and_invalidates_on_mutation() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(80),
            10,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.add(FlowEntry::new(
            Match::any(),
            1,
            vec![Action::out(9)],
            Time::ZERO,
        ));
        // First packet walks and caches; second hits.
        t.lookup(&key(80), 0, 60, Time::ZERO);
        t.lookup(&key(80), 0, 60, Time::ZERO);
        assert_eq!((t.cache().hits, t.cache().misses), (1, 1));
        assert_eq!(t.entries()[0].packet_count, 2, "hit bumps same counters");
        // A higher-priority add must invalidate: next lookup re-walks and
        // picks the new winner.
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(80),
            100,
            vec![Action::out(5)],
            Time::ZERO,
        ));
        let e = t.lookup(&key(80), 0, 60, Time::ZERO).unwrap();
        assert_eq!(e.actions, vec![Action::out(5)]);
        assert_eq!(t.cache().misses, 2, "post-mutation lookup is a miss");
    }

    #[test]
    fn cache_disabled_walks_every_time() {
        let mut t = FlowTable::new();
        t.set_cache_enabled(false);
        t.add(FlowEntry::new(
            Match::any(),
            1,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.lookup(&key(80), 0, 60, Time::ZERO);
        t.lookup(&key(80), 0, 60, Time::ZERO);
        assert_eq!((t.cache().hits, t.cache().misses), (0, 0));
        assert_eq!(t.entries()[0].packet_count, 2);
    }

    #[test]
    fn expiry_invalidates_cache() {
        let mut t = FlowTable::new();
        let mut e = FlowEntry::new(Match::any(), 1, vec![Action::out(1)], Time::ZERO);
        e.hard_timeout = 1;
        t.add(e);
        t.lookup(&key(80), 0, 60, Time::ZERO);
        assert_eq!(t.cache().len(), 1);
        assert_eq!(t.expire(Time::from_secs(1)).len(), 1);
        assert!(t.cache().is_empty());
        assert!(t.lookup(&key(80), 0, 60, Time::from_secs(1)).is_none());
    }

    #[test]
    fn modify_rewrites_actions() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(80),
            1,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        let n = t.modify(&Match::any(), 0, false, &[Action::out(5)]);
        assert_eq!(n, 1);
        assert_eq!(t.entries()[0].actions, vec![Action::out(5)]);
    }

    #[test]
    fn stats_reports_matching_entries() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(
            Match::any().with_tp_dst(80),
            1,
            vec![Action::out(1)],
            Time::ZERO,
        ));
        t.lookup(&key(80), 0, 64, Time::from_secs(1));
        let stats = t.stats(&Match::any(), port::NONE, Time::from_secs(2));
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].packet_count, 1);
        assert_eq!(stats[0].byte_count, 64);
        assert_eq!(stats[0].duration_ns, 2_000_000_000);
    }
}
