//! The exact-match flow cache (the Open vSwitch EMC role).
//!
//! A [`FlowCache`] sits in front of the priority/wildcard table walk in
//! [`crate::table::FlowTable`]: the first packet of a flow pays the full
//! walk and deposits `(flow key, in_port) → winning entry index`; every
//! later packet of the same microflow resolves in one hash probe. The
//! cache is **strictly invalidated** — any table mutation (flow-mod
//! add/modify/delete, timeout expiry) flushes it wholesale, so a cached
//! lookup can never disagree with the table walk. Correctness therefore
//! never depends on partial-invalidation bookkeeping; the differential
//! property suite in `tests/prop.rs` holds the two paths equal under
//! randomized rule churn.
//!
//! Determinism: the map is only ever *probed* per packet (no iteration),
//! eviction is FIFO by insertion order, and flushes are total — so runs
//! with the cache on and off produce byte-identical event traces.

use escape_packet::FlowKey;
use std::collections::{HashMap, VecDeque};

/// Default bound on cached microflows per switch.
pub const DEFAULT_CACHE_CAP: usize = 8192;

/// Cache key: the OF 1.0 12-tuple plus ingress port — everything the
/// table walk can discriminate on, so an exact-key hit is decisive.
pub type CacheKey = (FlowKey, u16);

/// An exact-match cache over a flow table's lookup results.
///
/// Stores indices into the owning table's entry vector. Indices stay
/// valid between mutations because the only operations that reorder or
/// remove entries ([`crate::table::FlowTable::add`] / `modify` /
/// `delete` / `expire`) flush the cache first.
#[derive(Debug, Default)]
pub struct FlowCache {
    map: HashMap<CacheKey, usize>,
    /// Insertion order for deterministic FIFO eviction.
    order: VecDeque<CacheKey>,
    cap: usize,
    enabled: bool,
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that fell through to the table walk.
    pub misses: u64,
    /// Entries dropped by flushes (strict invalidation) and evictions.
    pub invalidations: u64,
}

impl FlowCache {
    /// An enabled cache with the default capacity.
    pub fn new() -> FlowCache {
        FlowCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap: DEFAULT_CACHE_CAP,
            enabled: true,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Turns the cache on or off. Disabling flushes it so a later
    /// re-enable starts cold instead of serving stale indices.
    pub fn set_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.flush();
        }
        self.enabled = enabled;
    }

    /// Whether lookups consult the cache.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of cached microflows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Probes the cache. Counts a hit or miss only when enabled.
    pub fn get(&mut self, key: &CacheKey) -> Option<usize> {
        if !self.enabled {
            return None;
        }
        match self.map.get(key) {
            Some(&idx) => {
                self.hits += 1;
                Some(idx)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Deposits a walk result, evicting the oldest insertion at capacity.
    pub fn insert(&mut self, key: CacheKey, idx: usize) {
        if !self.enabled {
            return;
        }
        if self.map.len() >= self.cap {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
                self.invalidations += 1;
            }
        }
        if self.map.insert(key, idx).is_none() {
            self.order.push_back(key);
        }
    }

    /// Strict invalidation: forgets every cached microflow. Called on
    /// every table mutation.
    pub fn flush(&mut self) {
        self.invalidations += self.map.len() as u64;
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use escape_packet::{MacAddr, PacketBuilder};
    use std::net::Ipv4Addr;

    fn key(dport: u16) -> CacheKey {
        let f = PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            5,
            dport,
            Bytes::from_static(b"c"),
        );
        (FlowKey::extract(&f).unwrap(), 0)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = FlowCache::new();
        assert_eq!(c.get(&key(80)), None);
        c.insert(key(80), 3);
        assert_eq!(c.get(&key(80)), Some(3));
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn flush_forgets_and_counts() {
        let mut c = FlowCache::new();
        c.insert(key(80), 0);
        c.insert(key(81), 1);
        c.flush();
        assert_eq!(c.get(&key(80)), None);
        assert_eq!(c.invalidations, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn disabled_cache_never_answers() {
        let mut c = FlowCache::new();
        c.insert(key(80), 0);
        c.set_enabled(false);
        assert_eq!(c.get(&key(80)), None);
        assert_eq!((c.hits, c.misses), (0, 0), "disabled probes are uncounted");
        // Re-enabling starts cold.
        c.set_enabled(true);
        assert_eq!(c.get(&key(80)), None);
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let mut c = FlowCache::new();
        c.cap = 2;
        c.insert(key(1), 0);
        c.insert(key(2), 1);
        c.insert(key(3), 2); // evicts key(1)
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&key(1)), None);
        assert_eq!(c.get(&key(2)), Some(1));
        assert_eq!(c.get(&key(3)), Some(2));
    }
}
