//! The OpenFlow 1.0 match structure (`ofp_match`).

use escape_packet::{FlowKey, MacAddr};
use std::net::Ipv4Addr;

/// Wildcard bit positions from OpenFlow 1.0 (`ofp_flow_wildcards`).
mod wc {
    pub const IN_PORT: u32 = 1 << 0;
    pub const DL_VLAN: u32 = 1 << 1;
    pub const DL_SRC: u32 = 1 << 2;
    pub const DL_DST: u32 = 1 << 3;
    pub const DL_TYPE: u32 = 1 << 4;
    pub const NW_PROTO: u32 = 1 << 5;
    pub const TP_SRC: u32 = 1 << 6;
    pub const TP_DST: u32 = 1 << 7;
    pub const NW_SRC_SHIFT: u32 = 8;
    pub const NW_DST_SHIFT: u32 = 14;
    pub const DL_VLAN_PCP: u32 = 1 << 20;
    pub const NW_TOS: u32 = 1 << 21;
    /// All fields wildcarded.
    #[allow(dead_code)]
    pub const ALL: u32 = (1 << 22) - 1;
}

/// A flow match: `None` fields are wildcarded. `nw_src`/`nw_dst` carry a
/// prefix length (32 = exact host) per OF 1.0's CIDR wildcard encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Match {
    pub in_port: Option<u16>,
    pub dl_src: Option<MacAddr>,
    pub dl_dst: Option<MacAddr>,
    pub dl_vlan: Option<u16>,
    pub dl_type: Option<u16>,
    pub nw_tos: Option<u8>,
    pub nw_proto: Option<u8>,
    pub nw_src: Option<(Ipv4Addr, u8)>,
    pub nw_dst: Option<(Ipv4Addr, u8)>,
    pub tp_src: Option<u16>,
    pub tp_dst: Option<u16>,
}

impl Match {
    /// The match-everything wildcard.
    pub fn any() -> Match {
        Match::default()
    }

    /// An exact match on every field OpenFlow 1.0 knows, taken from a
    /// frame's flow key and ingress port — what a reactive L2/L3
    /// controller installs per flow.
    pub fn exact_from_key(key: &FlowKey, in_port: u16) -> Match {
        Match {
            in_port: Some(in_port),
            dl_src: Some(key.eth_src),
            dl_dst: Some(key.eth_dst),
            dl_vlan: key.vlan_id,
            dl_type: Some(key.eth_type),
            nw_tos: key.ip_dscp.map(|d| d << 2),
            nw_proto: key.ip_proto,
            nw_src: key.ip_src.map(|a| (a, 32)),
            nw_dst: key.ip_dst.map(|a| (a, 32)),
            tp_src: key.tp_src,
            tp_dst: key.tp_dst,
        }
    }

    /// True if this match accepts the frame described by `key` arriving on
    /// `in_port`.
    pub fn matches(&self, key: &FlowKey, in_port: u16) -> bool {
        fn net_match(want: Option<(Ipv4Addr, u8)>, got: Option<Ipv4Addr>) -> bool {
            match want {
                None => true,
                Some((net, len)) => got.is_some_and(|ip| {
                    let mask = if len == 0 {
                        0
                    } else {
                        u32::MAX << (32 - len.min(32) as u32)
                    };
                    u32::from(ip) & mask == u32::from(net) & mask
                }),
            }
        }
        self.in_port.is_none_or(|p| p == in_port)
            && self.dl_src.is_none_or(|m| m == key.eth_src)
            && self.dl_dst.is_none_or(|m| m == key.eth_dst)
            && self.dl_vlan.is_none_or(|v| Some(v) == key.vlan_id)
            && self.dl_type.is_none_or(|t| t == key.eth_type)
            && self
                .nw_tos
                .is_none_or(|t| key.ip_dscp.map(|d| d << 2) == Some(t))
            && self.nw_proto.is_none_or(|p| key.ip_proto == Some(p))
            && net_match(self.nw_src, key.ip_src)
            && net_match(self.nw_dst, key.ip_dst)
            && self.tp_src.is_none_or(|p| key.tp_src == Some(p))
            && self.tp_dst.is_none_or(|p| key.tp_dst == Some(p))
    }

    /// True when this match is at least as specific as `other` (every
    /// packet this matches, `other` also matches). Used for `OFPFC_MODIFY`
    /// / `OFPFC_DELETE` non-strict semantics.
    pub fn is_subset_of(&self, other: &Match) -> bool {
        fn field_ok<T: PartialEq + Copy>(mine: Option<T>, theirs: Option<T>) -> bool {
            match (mine, theirs) {
                (_, None) => true,
                (Some(a), Some(b)) => a == b,
                (None, Some(_)) => false,
            }
        }
        fn net_ok(mine: Option<(Ipv4Addr, u8)>, theirs: Option<(Ipv4Addr, u8)>) -> bool {
            match (mine, theirs) {
                (_, None) => true,
                (None, Some(_)) => false,
                (Some((a, la)), Some((b, lb))) => {
                    if la < lb {
                        return false;
                    }
                    let mask = if lb == 0 {
                        0
                    } else {
                        u32::MAX << (32 - lb.min(32) as u32)
                    };
                    u32::from(a) & mask == u32::from(b) & mask
                }
            }
        }
        field_ok(self.in_port, other.in_port)
            && field_ok(self.dl_src, other.dl_src)
            && field_ok(self.dl_dst, other.dl_dst)
            && field_ok(self.dl_vlan, other.dl_vlan)
            && field_ok(self.dl_type, other.dl_type)
            && field_ok(self.nw_tos, other.nw_tos)
            && field_ok(self.nw_proto, other.nw_proto)
            && net_ok(self.nw_src, other.nw_src)
            && net_ok(self.nw_dst, other.nw_dst)
            && field_ok(self.tp_src, other.tp_src)
            && field_ok(self.tp_dst, other.tp_dst)
    }

    /// Serializes to the 40-byte `ofp_match` wire layout.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let mut wildcards = 0u32;
        let mut set = |bit: u32, absent: bool| {
            if absent {
                wildcards |= bit;
            }
        };
        set(wc::IN_PORT, self.in_port.is_none());
        set(wc::DL_VLAN, self.dl_vlan.is_none());
        set(wc::DL_SRC, self.dl_src.is_none());
        set(wc::DL_DST, self.dl_dst.is_none());
        set(wc::DL_TYPE, self.dl_type.is_none());
        set(wc::NW_PROTO, self.nw_proto.is_none());
        set(wc::TP_SRC, self.tp_src.is_none());
        set(wc::TP_DST, self.tp_dst.is_none());
        set(wc::DL_VLAN_PCP, true); // PCP not modelled: always wild
        set(wc::NW_TOS, self.nw_tos.is_none());
        let src_wild = 32 - self.nw_src.map_or(0, |(_, l)| l.min(32)) as u32;
        let dst_wild = 32 - self.nw_dst.map_or(0, |(_, l)| l.min(32)) as u32;
        wildcards |= src_wild << wc::NW_SRC_SHIFT;
        wildcards |= dst_wild << wc::NW_DST_SHIFT;

        buf.extend_from_slice(&wildcards.to_be_bytes());
        buf.extend_from_slice(&self.in_port.unwrap_or(0).to_be_bytes());
        buf.extend_from_slice(&self.dl_src.unwrap_or(MacAddr::ZERO).0);
        buf.extend_from_slice(&self.dl_dst.unwrap_or(MacAddr::ZERO).0);
        buf.extend_from_slice(&self.dl_vlan.unwrap_or(0xffff).to_be_bytes());
        buf.push(0); // dl_vlan_pcp
        buf.push(0); // pad
        buf.extend_from_slice(&self.dl_type.unwrap_or(0).to_be_bytes());
        buf.push(self.nw_tos.unwrap_or(0));
        buf.push(self.nw_proto.unwrap_or(0));
        buf.extend_from_slice(&[0, 0]); // pad
        buf.extend_from_slice(&self.nw_src.map_or([0; 4], |(a, _)| a.octets()));
        buf.extend_from_slice(&self.nw_dst.map_or([0; 4], |(a, _)| a.octets()));
        buf.extend_from_slice(&self.tp_src.unwrap_or(0).to_be_bytes());
        buf.extend_from_slice(&self.tp_dst.unwrap_or(0).to_be_bytes());
    }

    /// Parses the 40-byte `ofp_match` wire layout.
    pub fn decode(b: &[u8]) -> Option<(Match, usize)> {
        if b.len() < 40 {
            return None;
        }
        let wildcards = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
        let get = |bit: u32| wildcards & bit == 0;
        let mac = |o: usize| {
            let mut m = [0u8; 6];
            m.copy_from_slice(&b[o..o + 6]);
            MacAddr(m)
        };
        let src_wild = ((wildcards >> wc::NW_SRC_SHIFT) & 0x3f).min(32) as u8;
        let dst_wild = ((wildcards >> wc::NW_DST_SHIFT) & 0x3f).min(32) as u8;
        let m = Match {
            in_port: get(wc::IN_PORT).then(|| u16::from_be_bytes([b[4], b[5]])),
            dl_src: get(wc::DL_SRC).then(|| mac(6)),
            dl_dst: get(wc::DL_DST).then(|| mac(12)),
            dl_vlan: get(wc::DL_VLAN).then(|| u16::from_be_bytes([b[18], b[19]])),
            dl_type: get(wc::DL_TYPE).then(|| u16::from_be_bytes([b[22], b[23]])),
            nw_tos: get(wc::NW_TOS).then(|| b[24]),
            nw_proto: get(wc::NW_PROTO).then(|| b[25]),
            nw_src: (src_wild < 32)
                .then(|| (Ipv4Addr::new(b[28], b[29], b[30], b[31]), 32 - src_wild)),
            nw_dst: (dst_wild < 32)
                .then(|| (Ipv4Addr::new(b[32], b[33], b[34], b[35]), 32 - dst_wild)),
            tp_src: get(wc::TP_SRC).then(|| u16::from_be_bytes([b[36], b[37]])),
            tp_dst: get(wc::TP_DST).then(|| u16::from_be_bytes([b[38], b[39]])),
        };
        Some((m, 40))
    }

    /// Count of specified (non-wildcard) fields — a crude specificity
    /// metric used by tests and diagnostics.
    pub fn specificity(&self) -> u32 {
        let opt = |b: bool| b as u32;
        opt(self.in_port.is_some())
            + opt(self.dl_src.is_some())
            + opt(self.dl_dst.is_some())
            + opt(self.dl_vlan.is_some())
            + opt(self.dl_type.is_some())
            + opt(self.nw_tos.is_some())
            + opt(self.nw_proto.is_some())
            + self.nw_src.map_or(0, |(_, l)| l as u32)
            + self.nw_dst.map_or(0, |(_, l)| l as u32)
            + opt(self.tp_src.is_some())
            + opt(self.tp_dst.is_some())
    }
}

/// Builder-style helpers for constructing matches fluently.
impl Match {
    pub fn with_in_port(mut self, p: u16) -> Self {
        self.in_port = Some(p);
        self
    }
    pub fn with_dl_type(mut self, t: u16) -> Self {
        self.dl_type = Some(t);
        self
    }
    pub fn with_dl_src(mut self, m: MacAddr) -> Self {
        self.dl_src = Some(m);
        self
    }
    pub fn with_dl_dst(mut self, m: MacAddr) -> Self {
        self.dl_dst = Some(m);
        self
    }
    pub fn with_nw_proto(mut self, p: u8) -> Self {
        self.nw_proto = Some(p);
        // nw fields require dl_type ip
        if self.dl_type.is_none() {
            self.dl_type = Some(0x0800);
        }
        self
    }
    pub fn with_nw_src(mut self, a: Ipv4Addr, len: u8) -> Self {
        self.nw_src = Some((a, len));
        if self.dl_type.is_none() {
            self.dl_type = Some(0x0800);
        }
        self
    }
    pub fn with_nw_dst(mut self, a: Ipv4Addr, len: u8) -> Self {
        self.nw_dst = Some((a, len));
        if self.dl_type.is_none() {
            self.dl_type = Some(0x0800);
        }
        self
    }
    pub fn with_tp_dst(mut self, p: u16) -> Self {
        self.tp_dst = Some(p);
        self
    }
    pub fn with_tp_src(mut self, p: u16) -> Self {
        self.tp_src = Some(p);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use escape_packet::PacketBuilder;

    fn key(dport: u16) -> FlowKey {
        let f = PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(10, 4, 5, 6),
            1000,
            dport,
            Bytes::from_static(b"m"),
        );
        FlowKey::extract(&f).unwrap()
    }

    #[test]
    fn any_matches_everything() {
        assert!(Match::any().matches(&key(80), 3));
    }

    #[test]
    fn exact_match_binds_all_fields() {
        let k = key(80);
        let m = Match::exact_from_key(&k, 3);
        assert!(m.matches(&k, 3));
        assert!(!m.matches(&k, 4)); // wrong port
        assert!(!m.matches(&key(81), 3)); // wrong tp_dst
    }

    #[test]
    fn cidr_prefixes() {
        let m = Match::any().with_nw_dst(Ipv4Addr::new(10, 4, 0, 0), 16);
        assert!(m.matches(&key(80), 0));
        let m = Match::any().with_nw_dst(Ipv4Addr::new(10, 5, 0, 0), 16);
        assert!(!m.matches(&key(80), 0));
        let m = Match::any().with_nw_dst(Ipv4Addr::new(0, 0, 0, 0), 0);
        assert!(m.matches(&key(80), 0));
    }

    #[test]
    fn wire_roundtrip_various() {
        let cases = [
            Match::any(),
            Match::exact_from_key(&key(443), 7),
            Match::any().with_dl_type(0x0806),
            Match::any()
                .with_nw_src(Ipv4Addr::new(192, 168, 0, 0), 24)
                .with_tp_dst(53),
            Match::any().with_in_port(65_000).with_nw_proto(6),
        ];
        for m in cases {
            let mut buf = Vec::new();
            m.encode(&mut buf);
            assert_eq!(buf.len(), 40);
            let (m2, used) = Match::decode(&buf).unwrap();
            assert_eq!(used, 40);
            assert_eq!(m, m2);
        }
    }

    #[test]
    fn subset_semantics() {
        let k = key(80);
        let exact = Match::exact_from_key(&k, 1);
        let broad = Match::any().with_dl_type(0x0800);
        assert!(exact.is_subset_of(&broad));
        assert!(!broad.is_subset_of(&exact));
        assert!(exact.is_subset_of(&Match::any()));
        assert!(broad.is_subset_of(&broad));
        // Prefix containment.
        let narrow = Match::any().with_nw_dst(Ipv4Addr::new(10, 4, 5, 0), 24);
        let wide = Match::any().with_nw_dst(Ipv4Addr::new(10, 4, 0, 0), 16);
        assert!(narrow.is_subset_of(&wide));
        assert!(!wide.is_subset_of(&narrow));
    }

    #[test]
    fn specificity_orders_matches() {
        let k = key(80);
        assert!(
            Match::exact_from_key(&k, 1).specificity()
                > Match::any().with_dl_type(0x0800).specificity()
        );
        assert_eq!(Match::any().specificity(), 0);
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert!(Match::decode(&[0u8; 39]).is_none());
    }
}
