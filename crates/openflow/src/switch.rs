//! The software OpenFlow switch (the Open vSwitch role).

use crate::action::{self, Action};
use crate::port;
use crate::table::{FlowEntry, FlowTable, RemovedReason};
use crate::wire::{
    FlowModCommand, OfMessage, PacketInReason, PortDesc, PortStats, OFPFF_SEND_FLOW_REM,
};
use escape_netem::{CtrlId, DropReason, HopDetail, NodeCtx, NodeLogic, Time};
use escape_packet::{FlowKey, MacAddr, Packet};
use std::collections::HashMap;

/// `buffer_id` meaning "packet not buffered, full frame attached".
pub const NO_BUFFER: u32 = 0xffff_ffff;
/// Timer token used for flow expiry.
const EXPIRY_TOKEN: u64 = 0xE0F1;
/// Maximum packets parked awaiting controller verdicts.
const MAX_BUFFERS: usize = 256;

/// An OpenFlow 1.0 switch as an emulator node.
///
/// Dataplane frames arrive on ports `0..n_ports`; the controller talks
/// over a control channel attached with [`Switch::attach_controller`].
/// Table misses are punted as packet-ins; flow-mods, packet-outs, stats
/// and barriers behave per the 1.0 spec subset documented in DESIGN.md.
pub struct Switch {
    pub dpid: u64,
    n_ports: u16,
    pub table: FlowTable,
    ctrl: Option<CtrlId>,
    buffers: HashMap<u32, (u16, Packet)>,
    buffer_order: Vec<u32>,
    next_buffer: u32,
    port_stats: Vec<PortStats>,
    /// Bytes of a missed packet sent to the controller (OF `miss_send_len`).
    pub miss_send_len: u16,
    xid: u32,
    /// Packet-ins dropped because no controller is attached.
    pub orphan_misses: u64,
}

impl Switch {
    /// A switch with `n_ports` dataplane ports.
    pub fn new(dpid: u64, n_ports: u16) -> Switch {
        Switch {
            dpid,
            n_ports,
            table: FlowTable::new(),
            ctrl: None,
            buffers: HashMap::new(),
            buffer_order: Vec::new(),
            next_buffer: 1,
            port_stats: (0..n_ports)
                .map(|p| PortStats {
                    port_no: p,
                    ..Default::default()
                })
                .collect(),
            miss_send_len: 0xffff,
            xid: 1,
            orphan_misses: 0,
        }
    }

    /// Attaches the control channel to the controller. Must be called
    /// before traffic flows if reactive control is wanted.
    pub fn attach_controller(&mut self, ctrl: CtrlId) {
        self.ctrl = Some(ctrl);
    }

    /// Enables or disables the table's exact-match flow cache (off =
    /// every lookup walks the table, the seed behaviour).
    pub fn set_flow_cache(&mut self, enabled: bool) {
        self.table.set_cache_enabled(enabled);
    }

    /// Re-homes the flow cache counters into the environment's registry
    /// so `escape metrics` reports `openflow.cache_*`.
    pub fn attach_telemetry(&mut self, registry: &escape_telemetry::Registry) {
        self.table.attach_telemetry(registry);
    }

    /// Dataplane port count.
    pub fn n_ports(&self) -> u16 {
        self.n_ports
    }

    /// Port counters (for the port-stats reply and diagnostics).
    pub fn port_stats(&self) -> &[PortStats] {
        &self.port_stats
    }

    fn send_ctrl(&mut self, ctx: &mut NodeCtx<'_>, msg: OfMessage) {
        if let Some(c) = self.ctrl {
            self.xid = self.xid.wrapping_add(1);
            ctx.ctrl_send(c, msg.encode(self.xid));
        }
    }

    fn buffer_packet(&mut self, ctx: &mut NodeCtx<'_>, in_port: u16, pkt: Packet) -> u32 {
        if self.buffers.len() >= MAX_BUFFERS {
            // Evict the oldest buffered packet — it will never get a
            // controller verdict, so it dies here.
            if let Some(old) = self.buffer_order.first().copied() {
                if let Some((old_port, old_pkt)) = self.buffers.remove(&old) {
                    ctx.trace_drop(
                        old_pkt.id,
                        old_pkt.len(),
                        old_port,
                        DropReason::TableMissPolicy,
                    );
                }
                self.buffer_order.remove(0);
            }
        }
        let id = self.next_buffer;
        self.next_buffer = self.next_buffer.wrapping_add(1).max(1);
        self.buffers.insert(id, (in_port, pkt));
        self.buffer_order.push(id);
        id
    }

    /// Resolves one output port spec into transmissions.
    fn emit(&mut self, ctx: &mut NodeCtx<'_>, out: u16, in_port: u16, pkt: &Packet) {
        match out {
            port::FLOOD | port::ALL => {
                for p in 0..self.n_ports {
                    if p != in_port {
                        self.tx(ctx, p, pkt.clone());
                    }
                }
            }
            port::IN_PORT => self.tx(ctx, in_port, pkt.clone()),
            port::CONTROLLER => {
                let data = pkt.data.clone();
                let total_len = data.len() as u16;
                let msg = OfMessage::PacketIn {
                    buffer_id: NO_BUFFER,
                    total_len,
                    in_port,
                    reason: PacketInReason::Action,
                    data,
                };
                self.send_ctrl(ctx, msg);
            }
            p if (p as usize) < self.n_ports as usize => self.tx(ctx, p, pkt.clone()),
            _ => {} // unknown port: drop
        }
    }

    fn tx(&mut self, ctx: &mut NodeCtx<'_>, p: u16, pkt: Packet) {
        let st = &mut self.port_stats[p as usize];
        st.tx_packets += 1;
        st.tx_bytes += pkt.len() as u64;
        ctx.send(p, pkt);
    }

    /// Runs `actions` on `pkt` (from `in_port`) and transmits.
    fn run_actions(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        actions: &[Action],
        in_port: u16,
        pkt: &Packet,
    ) {
        let (data, outs) = action::apply(actions, &pkt.data);
        let newpkt = Packet {
            data,
            id: pkt.id,
            born_ns: pkt.born_ns,
        };
        for out in outs {
            self.emit(ctx, out, in_port, &newpkt);
        }
    }

    fn arm_expiry(&mut self, ctx: &mut NodeCtx<'_>) {
        if let Some(t) = self.table.next_expiry() {
            let now = ctx.now();
            let delay = Time::from_ns(t.since(now).max(1));
            ctx.set_timer(delay, EXPIRY_TOKEN);
        }
    }

    fn notify_removed(&mut self, ctx: &mut NodeCtx<'_>, removed: Vec<(FlowEntry, RemovedReason)>) {
        let now = ctx.now();
        for (e, reason) in removed {
            if e.notify_removed {
                let msg = OfMessage::FlowRemoved {
                    match_: e.match_,
                    cookie: e.cookie,
                    priority: e.priority,
                    reason: reason as u8,
                    duration_ns: now.since(e.installed_at),
                    packet_count: e.packet_count,
                    byte_count: e.byte_count,
                };
                self.send_ctrl(ctx, msg);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_flow_mod(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        match_: crate::Match,
        cookie: u64,
        command: FlowModCommand,
        idle_timeout: u16,
        hard_timeout: u16,
        priority: u16,
        buffer_id: u32,
        out_port: u16,
        flags: u16,
        actions: Vec<Action>,
    ) {
        let now = ctx.now();
        match command {
            FlowModCommand::Add => {
                let mut e = FlowEntry::new(match_, priority, actions.clone(), now);
                e.cookie = cookie;
                e.idle_timeout = idle_timeout;
                e.hard_timeout = hard_timeout;
                e.notify_removed = flags & OFPFF_SEND_FLOW_REM != 0;
                self.table.add(e);
                self.arm_expiry(ctx);
                // Apply to the buffered packet that triggered this, if any.
                if buffer_id != NO_BUFFER {
                    if let Some((in_port, pkt)) = self.buffers.remove(&buffer_id) {
                        self.buffer_order.retain(|&b| b != buffer_id);
                        self.run_actions(ctx, &actions, in_port, &pkt);
                    }
                }
            }
            FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                let strict = command == FlowModCommand::ModifyStrict;
                if self.table.modify(&match_, priority, strict, &actions) == 0 {
                    // Per spec, modify with no match behaves like add.
                    let mut e = FlowEntry::new(match_, priority, actions, now);
                    e.cookie = cookie;
                    e.idle_timeout = idle_timeout;
                    e.hard_timeout = hard_timeout;
                    e.notify_removed = flags & OFPFF_SEND_FLOW_REM != 0;
                    self.table.add(e);
                    self.arm_expiry(ctx);
                }
            }
            FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
                let strict = command == FlowModCommand::DeleteStrict;
                let removed = self
                    .table
                    .delete(&match_, priority, strict, out_port, cookie);
                let removed: Vec<_> = removed
                    .into_iter()
                    .map(|e| (e, RemovedReason::Delete))
                    .collect();
                self.notify_removed(ctx, removed);
            }
        }
    }
}

impl NodeLogic for Switch {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, in_port: u16, pkt: Packet) {
        {
            let st = &mut self.port_stats[in_port as usize];
            st.rx_packets += 1;
            st.rx_bytes += pkt.len() as u64;
        }
        let Ok(key) = FlowKey::extract(&pkt.data) else {
            self.port_stats[in_port as usize].rx_dropped += 1;
            ctx.trace_drop(pkt.id, pkt.len(), in_port, DropReason::Malformed);
            return;
        };
        let now = ctx.now();
        if let Some(idx) = self.table.lookup_idx(&key, in_port, pkt.len(), now) {
            // Borrow the winning entry's action list for the dispatch
            // instead of cloning it per packet; nothing below touches the
            // table, so the slot is restored intact afterwards.
            let e = self.table.entry_mut(idx);
            let (cookie, priority) = (e.cookie, e.priority);
            let actions = std::mem::take(&mut e.actions);
            if ctx.tracing() {
                ctx.trace_hop(
                    pkt.id,
                    pkt.len(),
                    in_port,
                    HopDetail::FlowMatch {
                        dpid: self.dpid,
                        cookie,
                        priority,
                    },
                );
            }
            if actions.iter().all(|a| matches!(a, Action::Output { .. })) {
                // Pure-output rule: forward the original frame without
                // the header-rewrite pass.
                for a in &actions {
                    if let Action::Output { port: p, .. } = a {
                        self.emit(ctx, *p, in_port, &pkt);
                    }
                }
            } else {
                self.run_actions(ctx, &actions, in_port, &pkt);
            }
            self.table.entry_mut(idx).actions = actions;
            return;
        }
        // Table miss: punt to controller.
        if self.ctrl.is_none() {
            self.orphan_misses += 1;
            self.port_stats[in_port as usize].rx_dropped += 1;
            ctx.trace_drop(pkt.id, pkt.len(), in_port, DropReason::TableMissPolicy);
            return;
        }
        if ctx.tracing() {
            ctx.trace_hop(
                pkt.id,
                pkt.len(),
                in_port,
                HopDetail::TableMiss { dpid: self.dpid },
            );
        }
        let total_len = pkt.data.len() as u16;
        let buffer_id = self.buffer_packet(ctx, in_port, pkt.clone());
        let keep = (self.miss_send_len as usize).min(pkt.data.len());
        let msg = OfMessage::PacketIn {
            buffer_id,
            total_len,
            in_port,
            reason: PacketInReason::NoMatch,
            data: pkt.data.slice(..keep),
        };
        self.send_ctrl(ctx, msg);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if token == EXPIRY_TOKEN {
            let removed = self.table.expire(ctx.now());
            self.notify_removed(ctx, removed);
            self.arm_expiry(ctx);
        }
    }

    fn on_ctrl(&mut self, ctx: &mut NodeCtx<'_>, _conn: CtrlId, msg: Vec<u8>) {
        let (msg, xid) = match OfMessage::decode(&msg) {
            Ok(ok) => ok,
            Err(_) => {
                self.send_ctrl(
                    ctx,
                    OfMessage::Error {
                        err_type: 0,
                        code: 0,
                        data: msg,
                    },
                );
                return;
            }
        };
        match msg {
            OfMessage::Hello => self.send_ctrl(ctx, OfMessage::Hello),
            OfMessage::EchoRequest(d) => self.send_ctrl(ctx, OfMessage::EchoReply(d)),
            OfMessage::FeaturesRequest => {
                let ports = (0..self.n_ports)
                    .map(|p| PortDesc {
                        port_no: p,
                        hw_addr: MacAddr::from_id(self.dpid << 8 | p as u64),
                        name: format!("s{}-eth{}", self.dpid, p),
                    })
                    .collect();
                let reply = OfMessage::FeaturesReply {
                    datapath_id: self.dpid,
                    n_buffers: MAX_BUFFERS as u32,
                    n_tables: 1,
                    ports,
                };
                self.send_ctrl(ctx, reply);
            }
            OfMessage::FlowMod {
                match_,
                cookie,
                command,
                idle_timeout,
                hard_timeout,
                priority,
                buffer_id,
                out_port,
                flags,
                actions,
            } => {
                self.handle_flow_mod(
                    ctx,
                    match_,
                    cookie,
                    command,
                    idle_timeout,
                    hard_timeout,
                    priority,
                    buffer_id,
                    out_port,
                    flags,
                    actions,
                );
            }
            OfMessage::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            } => {
                let pkt = if buffer_id != NO_BUFFER {
                    self.buffer_order.retain(|&b| b != buffer_id);
                    self.buffers.remove(&buffer_id).map(|(_, p)| p)
                } else {
                    Some(Packet::from_bytes(data))
                };
                if let Some(pkt) = pkt {
                    self.run_actions(ctx, &actions, in_port, &pkt);
                }
            }
            OfMessage::BarrierRequest => self.send_ctrl(ctx, OfMessage::BarrierReply),
            OfMessage::FlowStatsRequest { match_, out_port } => {
                let stats = self.table.stats(&match_, out_port, ctx.now());
                self.send_ctrl(ctx, OfMessage::FlowStatsReply(stats));
            }
            OfMessage::PortStatsRequest { port_no } => {
                let entries = if port_no == port::NONE || port_no == 0xfffe {
                    self.port_stats.clone()
                } else {
                    self.port_stats
                        .iter()
                        .filter(|p| p.port_no == port_no)
                        .copied()
                        .collect()
                };
                self.send_ctrl(ctx, OfMessage::PortStatsReply(entries));
            }
            // Replies/echoes addressed to us as if we were a controller,
            // and messages we don't implement: error out politely.
            other => {
                let _ = xid;
                let _ = other;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Match;
    use bytes::Bytes;
    use escape_netem::{LinkConfig, Sim};
    use escape_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    /// A controller-side stub that records messages and can queue replies.
    #[derive(Default)]
    struct CtrlStub {
        inbox: Vec<OfMessage>,
        outbox: Vec<Vec<u8>>,
    }
    impl NodeLogic for CtrlStub {
        fn on_packet(&mut self, _: &mut NodeCtx<'_>, _: u16, _: Packet) {}
        fn on_ctrl(&mut self, ctx: &mut NodeCtx<'_>, conn: CtrlId, msg: Vec<u8>) {
            let (m, _) = OfMessage::decode(&msg).unwrap();
            self.inbox.push(m);
            for out in self.outbox.drain(..) {
                ctx.ctrl_send(conn, out);
            }
        }
    }

    /// Counts frames received (host stand-in).
    #[derive(Default)]
    struct Sink {
        rx: Vec<(u16, Packet)>,
    }
    impl NodeLogic for Sink {
        fn on_packet(&mut self, _: &mut NodeCtx<'_>, port: u16, pkt: Packet) {
            self.rx.push((port, pkt));
        }
    }

    fn frame(dport: u16) -> Bytes {
        PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            7,
            dport,
            Bytes::from_static(b"sw"),
        )
    }

    /// Sim with: switch (3 ports), sinks on ports 0..3, controller stub.
    fn rig() -> (
        Sim,
        escape_netem::NodeId,
        Vec<escape_netem::NodeId>,
        escape_netem::NodeId,
        CtrlId,
    ) {
        let mut sim = Sim::new(3);
        let sw = sim.add_node("s1", 3, Box::new(Switch::new(1, 3)));
        let mut sinks = Vec::new();
        for p in 0..3u16 {
            let h = sim.add_node(format!("h{p}"), 1, Box::new(Sink::default()));
            sim.connect((sw, p), (h, 0), LinkConfig::ideal());
            sinks.push(h);
        }
        let c = sim.add_node("ctrl", 0, Box::new(CtrlStub::default()));
        let conn = sim.ctrl_connect(sw, c, escape_netem::Time::from_us(100));
        sim.node_as_mut::<Switch>(sw)
            .unwrap()
            .attach_controller(conn);
        (sim, sw, sinks, c, conn)
    }

    fn flow_mod_add(match_: Match, priority: u16, actions: Vec<Action>) -> OfMessage {
        OfMessage::FlowMod {
            match_,
            cookie: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority,
            buffer_id: NO_BUFFER,
            out_port: port::NONE,
            flags: 0,
            actions,
        }
    }

    #[test]
    fn miss_generates_packet_in_with_buffer() {
        let (mut sim, sw, _sinks, c, _) = rig();
        sim.inject(sw, 0, frame(80), escape_netem::Time::ZERO);
        sim.run(100);
        let stub = sim.node_as::<CtrlStub>(c).unwrap();
        assert_eq!(stub.inbox.len(), 1);
        match &stub.inbox[0] {
            OfMessage::PacketIn {
                buffer_id,
                in_port,
                reason,
                ..
            } => {
                assert_ne!(*buffer_id, NO_BUFFER);
                assert_eq!(*in_port, 0);
                assert_eq!(*reason, PacketInReason::NoMatch);
            }
            other => panic!("expected packet-in, got {other:?}"),
        }
    }

    #[test]
    fn installed_flow_forwards_without_controller_round_trip() {
        let (mut sim, sw, sinks, c, conn) = rig();
        // Install: udp dst port 80 -> output port 2.
        let fm = flow_mod_add(
            Match::any().with_dl_type(0x0800).with_tp_dst(80),
            10,
            vec![Action::out(2)],
        );
        sim.ctrl_send_from(c, conn, fm.encode(1));
        sim.run(10);
        sim.inject(sw, 0, frame(80), sim.now());
        sim.run(100);
        assert_eq!(sim.node_as::<Sink>(sinks[2]).unwrap().rx.len(), 1);
        assert_eq!(
            sim.node_as::<CtrlStub>(c).unwrap().inbox.len(),
            0,
            "no packet-in"
        );
        // A different flow still misses.
        sim.inject(sw, 0, frame(443), sim.now());
        sim.run(100);
        assert_eq!(sim.node_as::<CtrlStub>(c).unwrap().inbox.len(), 1);
    }

    #[test]
    fn flood_replicates_to_all_but_ingress() {
        let (mut sim, sw, sinks, c, conn) = rig();
        let fm = flow_mod_add(Match::any(), 1, vec![Action::out(port::FLOOD)]);
        sim.ctrl_send_from(c, conn, fm.encode(1));
        sim.run(10);
        sim.inject(sw, 1, frame(80), sim.now());
        sim.run(100);
        assert_eq!(sim.node_as::<Sink>(sinks[0]).unwrap().rx.len(), 1);
        assert_eq!(
            sim.node_as::<Sink>(sinks[1]).unwrap().rx.len(),
            0,
            "not back out ingress"
        );
        assert_eq!(sim.node_as::<Sink>(sinks[2]).unwrap().rx.len(), 1);
    }

    #[test]
    fn packet_out_with_buffer_releases_parked_packet() {
        let (mut sim, sw, sinks, c, conn) = rig();
        sim.inject(sw, 0, frame(80), escape_netem::Time::ZERO);
        sim.run(100);
        let buffer_id = match sim.node_as::<CtrlStub>(c).unwrap().inbox[0] {
            OfMessage::PacketIn { buffer_id, .. } => buffer_id,
            _ => unreachable!(),
        };
        let po = OfMessage::PacketOut {
            buffer_id,
            in_port: 0,
            actions: vec![Action::out(1)],
            data: Bytes::new(),
        };
        sim.ctrl_send_from(c, conn, po.encode(2));
        sim.run(100);
        assert_eq!(sim.node_as::<Sink>(sinks[1]).unwrap().rx.len(), 1);
    }

    #[test]
    fn flow_mod_with_buffer_id_forwards_and_installs() {
        let (mut sim, sw, sinks, c, conn) = rig();
        sim.inject(sw, 0, frame(80), escape_netem::Time::ZERO);
        sim.run(100);
        let buffer_id = match sim.node_as::<CtrlStub>(c).unwrap().inbox[0] {
            OfMessage::PacketIn { buffer_id, .. } => buffer_id,
            _ => unreachable!(),
        };
        let fm = OfMessage::FlowMod {
            match_: Match::any().with_dl_type(0x0800).with_tp_dst(80),
            cookie: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 5,
            buffer_id,
            out_port: port::NONE,
            flags: 0,
            actions: vec![Action::out(2)],
        };
        sim.ctrl_send_from(c, conn, fm.encode(3));
        sim.run(100);
        // Buffered packet released...
        assert_eq!(sim.node_as::<Sink>(sinks[2]).unwrap().rx.len(), 1);
        // ...and the flow serves the next packet without a miss.
        sim.inject(sw, 0, frame(80), sim.now());
        sim.run(100);
        assert_eq!(sim.node_as::<Sink>(sinks[2]).unwrap().rx.len(), 2);
        assert_eq!(sim.node_as::<CtrlStub>(c).unwrap().inbox.len(), 1);
    }

    #[test]
    fn handshake_features() {
        let (mut sim, _sw, _sinks, c, conn) = rig();
        sim.ctrl_send_from(c, conn, OfMessage::Hello.encode(1));
        sim.ctrl_send_from(c, conn, OfMessage::FeaturesRequest.encode(2));
        sim.run(10);
        let stub = sim.node_as::<CtrlStub>(c).unwrap();
        assert!(matches!(stub.inbox[0], OfMessage::Hello));
        match &stub.inbox[1] {
            OfMessage::FeaturesReply {
                datapath_id, ports, ..
            } => {
                assert_eq!(*datapath_id, 1);
                assert_eq!(ports.len(), 3);
                assert_eq!(ports[2].name, "s1-eth2");
            }
            other => panic!("expected features reply, got {other:?}"),
        }
    }

    #[test]
    fn hard_timeout_sends_flow_removed() {
        let (mut sim, sw, _sinks, c, conn) = rig();
        let fm = OfMessage::FlowMod {
            match_: Match::any(),
            cookie: 77,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 1,
            priority: 1,
            buffer_id: NO_BUFFER,
            out_port: port::NONE,
            flags: OFPFF_SEND_FLOW_REM,
            actions: vec![Action::out(1)],
        };
        sim.ctrl_send_from(c, conn, fm.encode(1));
        sim.run_until(escape_netem::Time::from_secs(2));
        let stub = sim.node_as::<CtrlStub>(c).unwrap();
        assert!(
            stub.inbox
                .iter()
                .any(|m| matches!(m, OfMessage::FlowRemoved { cookie: 77, .. })),
            "no flow-removed in {:?}",
            stub.inbox
        );
        assert!(sim.node_as::<Switch>(sw).unwrap().table.is_empty());
    }

    #[test]
    fn stats_round_trip() {
        let (mut sim, sw, _sinks, c, conn) = rig();
        let fm = flow_mod_add(Match::any(), 1, vec![Action::out(1)]);
        sim.ctrl_send_from(c, conn, fm.encode(1));
        sim.run(10);
        sim.inject(sw, 0, frame(80), sim.now());
        sim.run(100);
        sim.ctrl_send_from(
            c,
            conn,
            OfMessage::FlowStatsRequest {
                match_: Match::any(),
                out_port: port::NONE,
            }
            .encode(2),
        );
        sim.ctrl_send_from(
            c,
            conn,
            OfMessage::PortStatsRequest {
                port_no: port::NONE,
            }
            .encode(3),
        );
        sim.run(100);
        let stub = sim.node_as::<CtrlStub>(c).unwrap();
        let flow = stub.inbox.iter().find_map(|m| match m {
            OfMessage::FlowStatsReply(v) => Some(v),
            _ => None,
        });
        assert_eq!(flow.unwrap()[0].packet_count, 1);
        let ports = stub.inbox.iter().find_map(|m| match m {
            OfMessage::PortStatsReply(v) => Some(v),
            _ => None,
        });
        let ps = ports.unwrap();
        assert_eq!(ps[0].rx_packets, 1);
        assert_eq!(ps[1].tx_packets, 1);
    }

    #[test]
    fn no_controller_drops_misses() {
        let mut sim = Sim::new(0);
        let sw = sim.add_node("s1", 1, Box::new(Switch::new(1, 1)));
        let h = sim.add_node("h", 1, Box::new(Sink::default()));
        sim.connect((sw, 0), (h, 0), LinkConfig::ideal());
        sim.inject(sw, 0, frame(80), escape_netem::Time::ZERO);
        sim.run(100);
        assert_eq!(sim.node_as::<Switch>(sw).unwrap().orphan_misses, 1);
        let snap = sim.telemetry().snapshot();
        assert_eq!(
            snap.counter("netem.drops", &[("reason", "table_miss_policy")]),
            Some(1)
        );
    }

    #[test]
    fn flow_match_and_miss_are_annotated_in_trace() {
        let (mut sim, sw, _sinks, c, conn) = rig();
        sim.enable_trace(1000);
        let fm = flow_mod_add(
            Match::any().with_dl_type(0x0800).with_tp_dst(80),
            10,
            vec![Action::out(2)],
        );
        sim.ctrl_send_from(c, conn, fm.encode(1));
        sim.run(10);
        let hit = sim.inject(sw, 0, frame(80), sim.now());
        sim.run(100);
        let miss = sim.inject(sw, 0, frame(443), sim.now());
        sim.run(100);
        let tr = sim.trace.as_ref().unwrap();
        let hop = tr
            .for_packet(hit)
            .find(|r| r.dir == escape_netem::TraceDir::Hop)
            .expect("matched packet has a hop record");
        assert!(
            matches!(hop.hop, Some(HopDetail::FlowMatch { dpid: 1, .. })),
            "unexpected hop {:?}",
            hop.hop
        );
        let hop = tr
            .for_packet(miss)
            .find(|r| r.dir == escape_netem::TraceDir::Hop)
            .expect("missed packet has a hop record");
        assert_eq!(hop.hop, Some(HopDetail::TableMiss { dpid: 1 }));
    }

    #[test]
    fn malformed_ctrl_message_triggers_error_reply() {
        let (mut sim, sw, _sinks, c, conn) = rig();
        let _ = sw;
        sim.ctrl_send_from(c, conn, vec![0xde, 0xad]);
        sim.run(10);
        let stub = sim.node_as::<CtrlStub>(c).unwrap();
        assert!(matches!(stub.inbox[0], OfMessage::Error { .. }));
    }
}
