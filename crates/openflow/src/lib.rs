//! # escape-openflow
//!
//! OpenFlow 1.0 and a software switch — the Open vSwitch role in ESCAPE-RS.
//!
//! The paper's infrastructure layer consists of OpenFlow switches (Open
//! vSwitch) steered by a POX controller. This crate provides:
//!
//! * the OpenFlow 1.0 **wire protocol** ([`wire`]): binary encode/decode of
//!   the messages the control loop needs (hello/echo/features handshake,
//!   packet-in/out, flow-mod, flow-removed, barrier, flow/port stats,
//!   errors), with the real on-wire layout (40-byte `ofp_match`, action
//!   TLVs, 8-byte header);
//! * the OF 1.0 **match** semantics ([`ofmatch`]): wildcard bits including
//!   CIDR-masked `nw_src`/`nw_dst`;
//! * **actions** ([`action`]): output (physical and virtual ports) and the
//!   header-rewrite set, applied to real frames;
//! * a **flow table** ([`table`]): priority lookup, overlap checks,
//!   idle/hard timeouts, per-entry counters, fronted by an exact-match
//!   **flow cache** ([`cache`], the OvS EMC role) with strict
//!   invalidation on every mutation;
//! * a **switch** ([`switch::Switch`]): an [`escape_netem::NodeLogic`] that
//!   forwards frames per its flow table, punts misses to the controller
//!   over a control channel, and executes controller commands.

pub mod action;
pub mod cache;
pub mod ofmatch;
pub mod switch;
pub mod table;
pub mod wire;

pub use action::Action;
pub use cache::FlowCache;
pub use ofmatch::Match;
pub use switch::Switch;
pub use table::{FlowEntry, FlowTable};
pub use wire::{
    FlowModCommand, FlowStats, OfMessage, PacketInReason, PortDesc, PortStats, WireError,
};

/// Virtual port numbers from OpenFlow 1.0 (`ofp_port`).
pub mod port {
    /// Send the packet out the port it came in on.
    pub const IN_PORT: u16 = 0xfff8;
    /// All physical ports except input and those disabled.
    pub const FLOOD: u16 = 0xfffb;
    /// All physical ports except input.
    pub const ALL: u16 = 0xfffc;
    /// Encapsulate and send to the controller.
    pub const CONTROLLER: u16 = 0xfffd;
    /// Wildcard used in flow-mod `out_port` and stats requests.
    pub const NONE: u16 = 0xffff;
}
