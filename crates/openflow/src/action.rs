//! OpenFlow 1.0 actions and their application to frames.

use crate::port;
use bytes::Bytes;
use escape_packet::{EtherType, EthernetFrame, Ipv4Packet, MacAddr, TcpSegment, UdpDatagram};
use std::net::Ipv4Addr;

/// The OF 1.0 action subset ESCAPE uses. `Output` covers physical and
/// virtual ports (see [`crate::port`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    Output { port: u16, max_len: u16 },
    SetDlSrc(MacAddr),
    SetDlDst(MacAddr),
    SetNwSrc(Ipv4Addr),
    SetNwDst(Ipv4Addr),
    SetNwTos(u8),
    SetTpSrc(u16),
    SetTpDst(u16),
}

impl Action {
    /// Shorthand for a plain output action.
    pub fn out(port: u16) -> Action {
        Action::Output {
            port,
            max_len: 0xffff,
        }
    }

    /// Wire type code (`ofp_action_type`).
    fn type_code(&self) -> u16 {
        match self {
            Action::Output { .. } => 0,
            Action::SetDlSrc(_) => 4,
            Action::SetDlDst(_) => 5,
            Action::SetNwSrc(_) => 6,
            Action::SetNwDst(_) => 7,
            Action::SetNwTos(_) => 8,
            Action::SetTpSrc(_) => 9,
            Action::SetTpDst(_) => 10,
        }
    }

    /// Serializes one action TLV.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.extend_from_slice(&self.type_code().to_be_bytes());
        buf.extend_from_slice(&0u16.to_be_bytes()); // length placeholder
        match *self {
            Action::Output { port, max_len } => {
                buf.extend_from_slice(&port.to_be_bytes());
                buf.extend_from_slice(&max_len.to_be_bytes());
            }
            Action::SetDlSrc(m) | Action::SetDlDst(m) => {
                buf.extend_from_slice(&m.0);
                buf.extend_from_slice(&[0u8; 6]); // pad to 16
            }
            Action::SetNwSrc(a) | Action::SetNwDst(a) => {
                buf.extend_from_slice(&a.octets());
            }
            Action::SetNwTos(t) => {
                buf.push(t);
                buf.extend_from_slice(&[0u8; 3]);
            }
            Action::SetTpSrc(p) | Action::SetTpDst(p) => {
                buf.extend_from_slice(&p.to_be_bytes());
                buf.extend_from_slice(&[0u8; 2]);
            }
        }
        let len = (buf.len() - start) as u16;
        buf[start + 2..start + 4].copy_from_slice(&len.to_be_bytes());
    }

    /// Parses one action TLV, returning the action and bytes consumed.
    pub fn decode(b: &[u8]) -> Option<(Action, usize)> {
        if b.len() < 4 {
            return None;
        }
        let ty = u16::from_be_bytes([b[0], b[1]]);
        let len = u16::from_be_bytes([b[2], b[3]]) as usize;
        if len < 4 || !len.is_multiple_of(8) || b.len() < len {
            return None;
        }
        let body = &b[4..len];
        let mac = || {
            let mut m = [0u8; 6];
            m.copy_from_slice(&body[0..6]);
            MacAddr(m)
        };
        let a = match ty {
            0 if body.len() >= 4 => Action::Output {
                port: u16::from_be_bytes([body[0], body[1]]),
                max_len: u16::from_be_bytes([body[2], body[3]]),
            },
            4 if body.len() >= 6 => Action::SetDlSrc(mac()),
            5 if body.len() >= 6 => Action::SetDlDst(mac()),
            6 if body.len() >= 4 => {
                Action::SetNwSrc(Ipv4Addr::new(body[0], body[1], body[2], body[3]))
            }
            7 if body.len() >= 4 => {
                Action::SetNwDst(Ipv4Addr::new(body[0], body[1], body[2], body[3]))
            }
            8 if !body.is_empty() => Action::SetNwTos(body[0]),
            9 if body.len() >= 2 => Action::SetTpSrc(u16::from_be_bytes([body[0], body[1]])),
            10 if body.len() >= 2 => Action::SetTpDst(u16::from_be_bytes([body[0], body[1]])),
            _ => return None,
        };
        Some((a, len))
    }

    /// Serializes a list of actions.
    pub fn encode_list(actions: &[Action], buf: &mut Vec<u8>) {
        for a in actions {
            a.encode(buf);
        }
    }

    /// Parses `len` bytes of action TLVs.
    pub fn decode_list(mut b: &[u8]) -> Option<Vec<Action>> {
        let mut v = Vec::new();
        while !b.is_empty() {
            let (a, used) = Action::decode(b)?;
            v.push(a);
            b = &b[used..];
        }
        Some(v)
    }
}

/// Applies the header-rewrite actions (everything except `Output`) to a
/// frame, re-encoding affected layers so checksums stay valid. Returns the
/// rewritten frame and the list of output ports in action order.
pub fn apply(actions: &[Action], frame: &Bytes) -> (Bytes, Vec<u16>) {
    let mut outputs = Vec::new();
    let mut data = frame.clone();
    for a in actions {
        match *a {
            Action::Output { port, .. } => outputs.push(port),
            Action::SetDlSrc(m) => {
                if let Ok(mut eth) = EthernetFrame::decode(&data) {
                    eth.src = m;
                    data = eth.encode();
                }
            }
            Action::SetDlDst(m) => {
                if let Ok(mut eth) = EthernetFrame::decode(&data) {
                    eth.dst = m;
                    data = eth.encode();
                }
            }
            Action::SetNwSrc(ip) => data = rewrite_ip(&data, |p| p.src = ip),
            Action::SetNwDst(ip) => data = rewrite_ip(&data, |p| p.dst = ip),
            Action::SetNwTos(tos) => data = rewrite_ip(&data, |p| p.dscp = tos >> 2),
            Action::SetTpSrc(port_) => data = rewrite_tp(&data, |sp, _| *sp = port_),
            Action::SetTpDst(port_) => data = rewrite_tp(&data, |_, dp| *dp = port_),
        }
    }
    (data, outputs)
}

fn rewrite_ip(frame: &Bytes, f: impl FnOnce(&mut Ipv4Packet)) -> Bytes {
    let Ok(eth) = EthernetFrame::decode(frame) else {
        return frame.clone();
    };
    if eth.ethertype != EtherType::Ipv4 {
        return frame.clone();
    }
    let Ok(mut ip) = Ipv4Packet::decode(&eth.payload) else {
        return frame.clone();
    };
    // Transport checksums depend on the pseudo-header, so re-encode the
    // transport layer when addresses change.
    let (old_src, old_dst) = (ip.src, ip.dst);
    f(&mut ip);
    if (ip.src, ip.dst) != (old_src, old_dst) {
        match ip.protocol {
            escape_packet::IpProtocol::Udp => {
                if let Ok(u) = UdpDatagram::decode(&ip.payload, old_src, old_dst) {
                    ip.payload = u.encode(ip.src, ip.dst);
                }
            }
            escape_packet::IpProtocol::Tcp => {
                if let Ok(t) = TcpSegment::decode(&ip.payload, old_src, old_dst) {
                    ip.payload = t.encode(ip.src, ip.dst);
                }
            }
            _ => {}
        }
    }
    EthernetFrame::new(eth.dst, eth.src, eth.ethertype, ip.encode()).encode()
}

fn rewrite_tp(frame: &Bytes, f: impl FnOnce(&mut u16, &mut u16)) -> Bytes {
    let Ok(eth) = EthernetFrame::decode(frame) else {
        return frame.clone();
    };
    if eth.ethertype != EtherType::Ipv4 {
        return frame.clone();
    }
    let Ok(mut ip) = Ipv4Packet::decode(&eth.payload) else {
        return frame.clone();
    };
    match ip.protocol {
        escape_packet::IpProtocol::Udp => {
            if let Ok(mut u) = UdpDatagram::decode(&ip.payload, ip.src, ip.dst) {
                f(&mut u.src_port, &mut u.dst_port);
                ip.payload = u.encode(ip.src, ip.dst);
            }
        }
        escape_packet::IpProtocol::Tcp => {
            if let Ok(mut t) = TcpSegment::decode(&ip.payload, ip.src, ip.dst) {
                f(&mut t.src_port, &mut t.dst_port);
                ip.payload = t.encode(ip.src, ip.dst);
            }
        }
        _ => return frame.clone(),
    }
    EthernetFrame::new(eth.dst, eth.src, eth.ethertype, ip.encode()).encode()
}

/// True if `p` is one of the virtual output ports.
pub fn is_virtual_port(p: u16) -> bool {
    p >= port::IN_PORT
}

#[cfg(test)]
mod tests {
    use super::*;
    use escape_packet::PacketBuilder;

    fn frame() -> Bytes {
        PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            2000,
            Bytes::from_static(b"act"),
        )
    }

    #[test]
    fn tlv_roundtrip_all_kinds() {
        let actions = vec![
            Action::out(3),
            Action::Output {
                port: port::CONTROLLER,
                max_len: 128,
            },
            Action::SetDlSrc(MacAddr::from_id(9)),
            Action::SetDlDst(MacAddr::from_id(10)),
            Action::SetNwSrc(Ipv4Addr::new(1, 2, 3, 4)),
            Action::SetNwDst(Ipv4Addr::new(5, 6, 7, 8)),
            Action::SetNwTos(0xb8),
            Action::SetTpSrc(1111),
            Action::SetTpDst(2222),
        ];
        let mut buf = Vec::new();
        Action::encode_list(&actions, &mut buf);
        assert_eq!(buf.len() % 8, 0, "actions are 8-byte aligned");
        let back = Action::decode_list(&buf).unwrap();
        assert_eq!(actions, back);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Action::decode(&[0, 0, 0, 3]).is_none()); // len < 4
        assert!(Action::decode(&[0, 99, 0, 8, 0, 0, 0, 0]).is_none()); // unknown type
        assert!(Action::decode_list(&[0, 0, 0, 16, 0, 0]).is_none()); // truncated
    }

    #[test]
    fn apply_rewrites_and_collects_outputs() {
        let acts = [
            Action::SetDlDst(MacAddr::from_id(42)),
            Action::SetNwDst(Ipv4Addr::new(192, 168, 9, 9)),
            Action::SetTpDst(53),
            Action::out(7),
            Action::out(9),
        ];
        let (data, outs) = apply(&acts, &frame());
        assert_eq!(outs, vec![7, 9]);
        let eth = EthernetFrame::decode(&data).unwrap();
        assert_eq!(eth.dst, MacAddr::from_id(42));
        let ip = Ipv4Packet::decode(&eth.payload).unwrap(); // checksum ok
        assert_eq!(ip.dst, Ipv4Addr::new(192, 168, 9, 9));
        let udp = UdpDatagram::decode(&ip.payload, ip.src, ip.dst).unwrap(); // checksum ok
        assert_eq!(udp.dst_port, 53);
        assert_eq!(&udp.payload[..], b"act");
    }

    #[test]
    fn tos_rewrite_sets_dscp() {
        let (data, _) = apply(&[Action::SetNwTos(46 << 2)], &frame());
        let eth = EthernetFrame::decode(&data).unwrap();
        let ip = Ipv4Packet::decode(&eth.payload).unwrap();
        assert_eq!(ip.dscp, 46);
    }

    #[test]
    fn rewrites_on_non_ip_are_noops() {
        let arp = PacketBuilder::arp_request(
            MacAddr::from_id(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let (data, outs) = apply(
            &[Action::SetNwDst(Ipv4Addr::new(9, 9, 9, 9)), Action::out(1)],
            &arp,
        );
        assert_eq!(data, arp);
        assert_eq!(outs, vec![1]);
    }

    #[test]
    fn virtual_port_predicate() {
        assert!(is_virtual_port(port::FLOOD));
        assert!(is_virtual_port(port::CONTROLLER));
        assert!(!is_virtual_port(52));
    }
}
