//! The SIGCOMM'14 demo, end to end — the five steps from the paper's §2,
//! narrated.
//!
//! ```sh
//! cargo run --example demo_sigcomm
//! ```

use escape::env::Escape;
use escape::monitor::format_handler_table;
use escape_catalog::Catalog;
use escape_orch::NearestNeighbor;
use escape_pox::SteeringMode;
use escape_sg::{parse_service_graph, parse_topology};

const TOPOLOGY: &str = "\
switch s1 s2
container c1 cpu=4 mem=2048
container c2 cpu=4 mem=2048
sap sap0 sap1
link sap0 s1 bw=1000 delay=10us
link sap1 s2 bw=1000 delay=10us
link s1 s2   bw=1000 delay=100us
link c1 s1   bw=1000 delay=20us
link c2 s2   bw=1000 delay=20us
";

const SERVICE_GRAPH: &str = "\
sap sap0 sap1
vnf fw  type=firewall     cpu=1
vnf dpi type=dpi          cpu=2 pattern=attack
vnf lim type=rate_limiter cpu=1 rate_bps=20000000
chain demo = sap0 -> fw -> dpi -> lim -> sap1 bw=50 delay=10ms
";

fn main() {
    println!("=== ESCAPE demo: Extensible Service ChAin Prototyping Environment ===\n");

    println!("(1) define VNF containers and the rest of the topology");
    let topo = parse_topology(TOPOLOGY).expect("topology");
    for n in &topo.nodes {
        println!("    {:10} {:?}", n.name, n.kind);
    }

    println!("\n(2) create an abstract service graph (VNFs from the catalog)");
    let mut sg = parse_service_graph(SERVICE_GRAPH).expect("service graph");
    // Expand firewall rules (DSL values cannot contain spaces).
    for v in &mut sg.vnfs {
        if v.vnf_type == "firewall" {
            v.params.push(("rules".into(), "allow udp".into()));
        }
    }
    let catalog = Catalog::standard();
    for v in &sg.vnfs {
        let entry = catalog.get(&v.vnf_type).expect("catalog type");
        println!(
            "    {:4} :: {:13} — {}",
            v.name, v.vnf_type, entry.description
        );
    }
    println!("    chain: {}", sg.chains[0].hops.join(" -> "));

    println!("\n(3) map the SG to resources and deploy");
    let mut esc = Escape::build(
        topo,
        Box::new(NearestNeighbor),
        SteeringMode::Proactive,
        2014,
    )
    .unwrap();
    let report = esc.deploy(&sg).expect("deployment");
    for dc in &report.chains {
        for v in &dc.vnfs {
            println!(
                "    {} ({}) -> container {} (NETCONF id {})",
                v.vnf_name, v.vnf_type, v.container, v.vnf_id
            );
        }
        println!(
            "    path delay (mapped): {} µs | steering rules: {}",
            dc.mapping.total_delay_us, dc.rules
        );
    }
    println!(
        "    setup latency: {} total = netconf {} + steering {}",
        report.total(),
        report.netconf_phase(),
        report.steering_phase()
    );

    println!("\n(4) send and inspect live traffic");
    esc.start_udp("sap0", "sap1", 400, 500, 40).unwrap();
    esc.run_for_ms(200);
    let stats = esc.sap_stats("sap1").unwrap();
    println!(
        "    sap1: {} frames, {} bytes, mean latency {}",
        stats.udp_rx,
        stats.bytes_rx,
        stats
            .mean_latency()
            .map(|t| t.to_string())
            .unwrap_or_default()
    );
    let inbox = esc.sap_inbox("sap1").unwrap();
    println!(
        "    first payload bytes: {:?}...",
        &inbox[0][..8.min(inbox[0].len())]
    );

    println!("\n(5) monitor the VNFs (Clicky)");
    for vnf in ["fw", "dpi", "lim"] {
        let handlers = esc.monitor_vnf("demo", vnf).unwrap();
        println!(
            "{}",
            format_handler_table(&format!("{vnf} @ demo"), &handlers)
        );
    }

    assert_eq!(stats.udp_rx, 40);
    println!("demo complete.");
}
