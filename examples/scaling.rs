//! Scaling walk: Mininet's "scaling up to hundreds of nodes" claim,
//! exercised against the emulator (experiment E6's interactive sibling).
//!
//! Builds star topologies of growing size, deploys a chain batch on
//! each, runs traffic and prints wall-clock + virtual-time figures.
//!
//! ```sh
//! cargo run --release --example scaling
//! ```

use escape::env::Escape;
use escape_orch::workload::{random_service_graph, WorkloadSpec};
use escape_orch::NearestNeighbor;
use escape_pox::SteeringMode;
use escape_sg::topo::builders;
use std::time::Instant;

fn main() {
    println!(
        "{:>8} {:>8} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "leaves", "nodes", "chains", "accepted", "build_ms", "deploy_ms", "events"
    );
    for leaves in [4usize, 8, 16, 32, 64, 128] {
        let t0 = Instant::now();
        let topo = builders::star(leaves, 8.0);
        // Emulator nodes: 1 core + per leaf (switch+container+sap) + ctrl + mgr.
        let n_nodes = 1 + leaves * 3 + 2;
        let mut esc = Escape::build(
            topo.clone(),
            Box::new(NearestNeighbor),
            SteeringMode::Proactive,
            leaves as u64,
        )
        .expect("build");
        let build_ms = t0.elapsed().as_millis();

        let n_chains = (leaves / 2).max(1);
        let sg = random_service_graph(
            &topo,
            &WorkloadSpec {
                chains: n_chains,
                vnfs_per_chain: (1, 2),
                cpu: (0.25, 0.5),
                bandwidth_mbps: (5.0, 20.0),
                max_delay_us: None,
                seed: 7,
            },
        )
        .expect("workload");
        let t1 = Instant::now();
        let accepted = match esc.deploy(&sg) {
            Ok(r) => r.chains.len(),
            Err(escape::EscapeError::MappingFailed(rej)) => n_chains - rej.len(),
            Err(e) => panic!("{e}"),
        };
        let deploy_ms = t1.elapsed().as_millis();

        // A little traffic on the first accepted chain's SAP pair.
        if accepted > 0 {
            esc.start_udp("sap0", "sap1", 128, 200, 50).ok();
            esc.run_for_ms(100);
        }
        println!(
            "{:>8} {:>8} {:>8} {:>10} {:>12} {:>12} {:>10}",
            leaves,
            n_nodes,
            n_chains,
            accepted,
            build_ms,
            deploy_ms,
            esc.sim.stats().events
        );
    }
    println!("\nhundreds of emulated nodes remain workable on a laptop-scale budget.");
}
