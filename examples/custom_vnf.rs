//! Developing a custom VNF — the paper's first target audience:
//! "ESCAPE fosters VNF development by providing a simple, Mininet-based
//! API where service graphs, built from given VNFs, can be instantiated
//! and tested automatically."
//!
//! This example shows both extension points:
//!   1. a new *Click configuration* registered in the catalog (no code:
//!      compose existing elements);
//!   2. a new *Click element class* registered in the element registry
//!      (code: implement `Element`), then used from a config.
//!
//! ```sh
//! cargo run --example custom_vnf
//! ```

use escape::env::Escape;
use escape_catalog::{Catalog, VnfTemplate};
use escape_click::{ElemCtx, Element, Registry, Router};
use escape_netem::Time;
use escape_orch::GreedyFirstFit;
use escape_packet::Packet;
use escape_pox::SteeringMode;
use escape_sg::topo::builders;
use escape_sg::ServiceGraph;

/// Extension point 2: a brand-new element. TruncateBytes caps every
/// packet at N bytes — a toy "header-only capture" element.
struct TruncateBytes {
    max: usize,
    truncated: u64,
}

impl Element for TruncateBytes {
    fn class_name(&self) -> &'static str {
        "TruncateBytes"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, mut pkt: Packet) {
        if pkt.data.len() > self.max {
            pkt.data = pkt.data.slice(..self.max);
            self.truncated += 1;
        }
        ctx.emit(0, pkt);
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "truncated" => Some(self.truncated.to_string()),
            "max" => Some(self.max.to_string()),
            _ => None,
        }
    }
}

fn main() {
    // --- Unit-test the element in a bare router first (the fast inner
    // loop of VNF development: no emulation needed). ---
    let mut registry = Registry::standard();
    registry.register("TruncateBytes", |args| {
        let max = args
            .first()
            .and_then(|a| a.parse().ok())
            .ok_or("TruncateBytes needs a byte limit")?;
        Ok(Box::new(TruncateBytes { max, truncated: 0 }))
    });
    let mut router = Router::from_config(
        "FromDevice(0) -> t :: TruncateBytes(100) -> ToDevice(1);",
        &registry,
        0,
    )
    .expect("config compiles");
    let big = Packet {
        data: bytes::Bytes::from(vec![0u8; 500]),
        id: 1,
        born_ns: 0,
    };
    let out = router.push_external(0, big, Time::ZERO);
    assert_eq!(out.external[0].1.len(), 100);
    println!(
        "element test: 500 B in -> {} B out, handler truncated={}",
        out.external[0].1.len(),
        router.read_handler("t.truncated").unwrap()
    );

    // --- Extension point 1: a catalog entry composing standard elements
    // (a "tiny IDS": count suspicious payloads, drop oversize packets). ---
    let mut catalog = Catalog::standard();
    catalog.register(VnfTemplate {
        name: "tiny_ids",
        description: "Flags payloads containing a pattern; drops nothing",
        ports: 2,
        default_cpu: 1.0,
        default_mem_mb: 128,
        template: "\
FromDevice(0) -> m :: StringMatcher({{pattern}});\n\
m [0] -> alert :: Counter -> ToDevice(1);\n\
m [1] -> clean :: Counter -> ToDevice(1);\n\
FromDevice(1) -> rev :: Counter -> ToDevice(0);\n",
        params: &[("pattern", "\"attack\"")],
    });
    let cfg = catalog.render("tiny_ids", &[]).unwrap();
    println!("\ntiny_ids click config:\n{cfg}");
    Router::from_config(&cfg, &registry, 0).expect("tiny_ids compiles");

    // --- Deploy the new VNF through the full environment. The catalog
    // in the deployed containers is the standard one, so ship the
    // rendered Click text via initiateVNF's click-config... which the
    // environment does automatically when the type is unknown? No — the
    // supported path for custom types is the raw config option, shown
    // here through a standard-type chain with custom parameters instead.
    let topo = builders::linear(2, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 5).unwrap();
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("ids", "dpi", 1.0, 128)
        .with_params(&[("pattern", "\"attack\"")])
        .chain("c", &["sap0", "ids", "sap1"], 10.0, None);
    esc.deploy(&sg).unwrap();
    esc.start_udp("sap0", "sap1", 200, 500, 10).unwrap();
    esc.run_for_ms(50);
    println!(
        "\ndeployed dpi with custom pattern: sap1 received {} frames",
        esc.sap_stats("sap1").unwrap().udp_rx
    );
    let handlers = esc.monitor_vnf("c", "ids").unwrap();
    println!(
        "{}",
        escape::monitor::format_handler_table("ids @ c", &handlers)
    );
    println!("ok.");
}
