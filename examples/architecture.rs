//! Figure 1 walk: brings up every ESCAPE component and prints the
//! architecture with live evidence for each box (experiment F1).
//!
//! ```sh
//! cargo run --example architecture
//! ```

use escape::env::Escape;
use escape_catalog::Catalog;
use escape_netconf::vnf_starter;
use escape_orch::NearestNeighbor;
use escape_pox::{Controller, SteeringMode, TrafficSteering};
use escape_sg::topo::builders;
use escape_sg::ServiceGraph;

fn main() {
    let topo = builders::linear(3, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(NearestNeighbor), SteeringMode::Proactive, 1).unwrap();
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("fw", "firewall", 1.0, 128)
        .with_params(&[("rules", "allow all")])
        .vnf("mon", "monitor", 0.5, 64)
        .chain("svc", &["sap0", "fw", "mon", "sap1"], 25.0, Some(50_000));
    let report = esc.deploy(&sg).unwrap();
    esc.start_udp("sap0", "sap1", 128, 500, 10).unwrap();
    esc.run_for_ms(50);

    let catalog = Catalog::standard();
    let module = vnf_starter::module();
    let n_sw = esc.topology().switches().count();
    let n_c = esc.topology().containers().count();
    let n_sap = esc.topology().saps().count();
    let ctl_stats = esc
        .sim
        .node_as::<Controller>(esc.infra.controller)
        .unwrap()
        .stats();
    let steering = esc
        .sim
        .node_as::<Controller>(esc.infra.controller)
        .unwrap()
        .component_as::<TrafficSteering>()
        .unwrap()
        .proactive_installs();

    println!("┌──────────────────────────── SERVICE LAYER ────────────────────────────┐");
    println!("│ SG editor stand-ins: DSL + JSON                                       │");
    println!(
        "│ VNF catalog: {:2} Click-implemented types                               │",
        catalog.names().len()
    );
    println!("│   {}", catalog.names().join(", "));
    println!(
        "│ SLA: chain 'svc' delay budget 50 ms -> mapped at {:6} µs             │",
        report.chains[0].mapping.total_delay_us
    );
    println!("├───────────────────────── ORCHESTRATION LAYER ─────────────────────────┤");
    println!(
        "│ mapping algorithm: {} (pluggable)                       │",
        esc.orchestrator().algorithm_name()
    );
    println!(
        "│ resource view: {:4.1} CPU cores free after embedding                    │",
        esc.orchestrator().state().total_free_cpu()
    );
    println!(
        "│ NETCONF client: {} RPC module '{}'                          │",
        module.rpcs.len(),
        module.name
    );
    println!(
        "│ traffic steering: {} proactive flow rules installed                    │",
        steering
    );
    println!("├───────────────────────── INFRASTRUCTURE LAYER ────────────────────────┤");
    println!(
        "│ emulated network: {} OpenFlow switches, {} VNF containers, {} SAPs      │",
        n_sw, n_c, n_sap
    );
    println!(
        "│ control network: {} OpenFlow connections up, {} flow-mods sent         │",
        ctl_stats.connections_up, ctl_stats.flow_mods_sent
    );
    println!(
        "│ dataplane: {} frames forwarded, {} events simulated               │",
        esc.sim.stats().frames_delivered,
        esc.sim.stats().events
    );
    println!("└────────────────────────────────────────────────────────────────────────┘");

    let rx = esc.sap_stats("sap1").unwrap().udp_rx;
    println!("\nproof of life: {rx}/10 frames crossed the deployed chain.");
    assert_eq!(rx, 10);

    println!("\nvnf_starter YANG module (excerpt):");
    for line in module.to_yang().lines().take(12) {
        println!("  {line}");
    }
}
