//! Quickstart: the smallest useful ESCAPE-RS session.
//!
//! Builds a 2-switch topology, deploys a one-VNF chain, pushes traffic
//! through it and prints what happened.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use escape::env::Escape;
use escape_orch::GreedyFirstFit;
use escape_pox::SteeringMode;
use escape_sg::topo::builders;
use escape_sg::ServiceGraph;

fn main() {
    // Infrastructure: sap0 - s0 - s1 - sap1, one VNF container per switch.
    let topo = builders::linear(2, 4.0);
    println!(
        "topology: {} switches, {} containers, {} SAPs, {} links",
        topo.switches().count(),
        topo.containers().count(),
        topo.saps().count(),
        topo.links.len()
    );

    let mut esc = Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 42)
        .expect("environment builds");

    // Service: sap0 -> monitor -> sap1, 50 Mbit/s.
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("mon", "monitor", 0.5, 64)
        .chain("quick", &["sap0", "mon", "sap1"], 50.0, None);

    let report = esc.deploy(&sg).expect("chain deploys");
    let chain = &report.chains[0];
    println!(
        "deployed chain 'quick': VNF {} on {} | {} steering rules | setup {} (netconf {}, steering {})",
        chain.vnfs[0].vnf_id,
        chain.vnfs[0].container,
        chain.rules,
        report.total(),
        report.netconf_phase(),
        report.steering_phase()
    );

    // Traffic: 100 frames of 256 B, one every 100 µs.
    esc.start_udp("sap0", "sap1", 256, 100, 100)
        .expect("traffic starts");
    esc.run_for_ms(100);

    let stats = esc.sap_stats("sap1").unwrap();
    println!(
        "sap1 received {}/{} frames, mean latency {}, max {}",
        stats.udp_rx,
        100,
        stats
            .mean_latency()
            .map(|t| t.to_string())
            .unwrap_or_default(),
        escape_netem::Time::from_ns(stats.latency_max_ns)
    );

    // Clicky view of the VNF.
    let handlers = esc.monitor_vnf("quick", "mon").expect("monitoring works");
    println!(
        "{}",
        escape::monitor::format_handler_table("mon @ quick", &handlers)
    );
    assert_eq!(stats.udp_rx, 100, "quickstart must deliver everything");
    println!("ok.");
}
